//! Resource stranding and pooling analysis (§2 of the paper).
//!
//! Reproduces the paper's motivation numbers without access to Azure
//! production data:
//!
//! - **Figure 2** — percentages of stranded CPU cores, memory, SSD
//!   capacity, and NIC bandwidth. [`packing`] packs an Azure-like VM
//!   mix ([`vm`]) onto hosts until the fleet is full; whatever cannot
//!   be used once one dimension fills is *stranded*. The VM catalog is
//!   calibrated so unpooled stranding lands near the paper's headline
//!   54 % (SSD) and 29 % (NIC).
//! - **§2.1 pooling claim** — pooling SSD/NIC across N hosts cuts
//!   stranding roughly by √N (54 % → 19 %, 29 % → 10 % at N = 8).
//!   [`pooling`] re-packs the same VM stream with pod-level SSD/NIC
//!   capacity; [`erlang`] provides the analytic square-root-staffing
//!   counterpart; the correlation knob shows when pooling stops
//!   helping (the paper's caveat about colocated correlated demand).

pub mod churn;
pub mod cost;
pub mod erlang;
pub mod packing;
pub mod pooling;
pub mod vm;

pub use packing::{pack_fleet, FleetStats, HostShape};
pub use pooling::{pack_pooled, sweep_pool_sizes, PoolSweepRow};
pub use vm::VmCatalog;
