//! Multi-dimensional bin packing of VMs onto hosts, and the stranding
//! measurement (Figure 2).

use serde::Serialize;
use simkit::rng::Rng;

use crate::vm::{VmCatalog, VmDemand};

/// A host's capacity along all four resources.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct HostShape {
    /// Physical cores.
    pub cores: u32,
    /// Memory in GB.
    pub mem_gb: u32,
    /// Local SSD in GB.
    pub ssd_gb: u32,
    /// NIC bandwidth in Gbps.
    pub nic_gbps: f64,
}

impl HostShape {
    /// The default cloud host: 40 cores, 256 GB, 4 TB SSD, 50 Gbps.
    pub fn default_cloud() -> HostShape {
        HostShape {
            cores: 40,
            mem_gb: 256,
            ssd_gb: 4096,
            nic_gbps: 50.0,
        }
    }
}

/// One host's remaining capacity.
#[derive(Clone, Copy, Debug)]
pub struct HostState {
    /// Free cores.
    pub cores: i64,
    /// Free memory (GB).
    pub mem_gb: i64,
    /// Free SSD (GB).
    pub ssd_gb: i64,
    /// Free NIC (Gbps).
    pub nic_gbps: f64,
}

impl HostState {
    fn fresh(shape: &HostShape) -> HostState {
        HostState {
            cores: shape.cores as i64,
            mem_gb: shape.mem_gb as i64,
            ssd_gb: shape.ssd_gb as i64,
            nic_gbps: shape.nic_gbps,
        }
    }

    /// True if the VM fits on this host alone.
    pub fn fits(&self, d: &VmDemand) -> bool {
        self.cores >= d.cores as i64
            && self.mem_gb >= d.mem_gb as i64
            && self.ssd_gb >= d.ssd_gb as i64
            && self.nic_gbps >= d.nic_gbps
    }

    fn place(&mut self, d: &VmDemand) {
        self.cores -= d.cores as i64;
        self.mem_gb -= d.mem_gb as i64;
        self.ssd_gb -= d.ssd_gb as i64;
        self.nic_gbps -= d.nic_gbps;
    }
}

/// Fleet-level stranding results.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct FleetStats {
    /// VMs placed before the fleet filled.
    pub placed: u64,
    /// Fraction of CPU cores stranded.
    pub cpu: f64,
    /// Fraction of memory stranded.
    pub mem: f64,
    /// Fraction of SSD capacity stranded.
    pub ssd: f64,
    /// Fraction of NIC bandwidth stranded.
    pub nic: f64,
}

/// Packs a VM stream onto `hosts` identical hosts (first-fit) until
/// `fail_streak` consecutive arrivals cannot be placed, then measures
/// stranding per resource: the fraction of fleet capacity left unused
/// once no more VMs fit anywhere.
pub fn pack_fleet(
    catalog: &mut VmCatalog,
    shape: &HostShape,
    hosts: usize,
    fail_streak: u32,
    rng: &mut Rng,
) -> FleetStats {
    let mut fleet: Vec<HostState> = (0..hosts).map(|_| HostState::fresh(shape)).collect();
    let mut placed = 0u64;
    let mut failures = 0u32;
    while failures < fail_streak {
        let d = catalog.sample(rng);
        match fleet.iter_mut().find(|h| h.fits(&d)) {
            Some(h) => {
                h.place(&d);
                placed += 1;
                failures = 0;
            }
            None => failures += 1,
        }
    }
    stats_of(&fleet, shape, hosts, placed)
}

/// Reduces a fleet's remaining capacities to stranding fractions.
pub(crate) fn stats_of(
    fleet: &[HostState],
    shape: &HostShape,
    hosts: usize,
    placed: u64,
) -> FleetStats {
    let total_cores = (shape.cores as f64) * hosts as f64;
    let total_mem = (shape.mem_gb as f64) * hosts as f64;
    let total_ssd = (shape.ssd_gb as f64) * hosts as f64;
    let total_nic = shape.nic_gbps * hosts as f64;
    let free_cores: f64 = fleet.iter().map(|h| h.cores as f64).sum();
    let free_mem: f64 = fleet.iter().map(|h| h.mem_gb as f64).sum();
    let free_ssd: f64 = fleet.iter().map(|h| h.ssd_gb as f64).sum();
    let free_nic: f64 = fleet.iter().map(|h| h.nic_gbps).sum();
    FleetStats {
        placed,
        cpu: free_cores / total_cores,
        mem: free_mem / total_mem,
        ssd: free_ssd / total_ssd,
        nic: free_nic / total_nic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(seed: u64) -> FleetStats {
        let mut cat = VmCatalog::azure_like();
        let mut rng = Rng::new(seed);
        pack_fleet(&mut cat, &HostShape::default_cloud(), 500, 200, &mut rng)
    }

    #[test]
    fn fig2_ssd_and_nic_strand_most() {
        let s = run(11);
        // The paper's Figure 2 headline: SSD and NIC are the two most
        // stranded resources, ≈ 54 % and ≈ 29 % on average.
        assert!(
            s.ssd > s.nic,
            "SSD ({}) should strand more than NIC ({})",
            s.ssd,
            s.nic
        );
        assert!(
            s.nic > s.cpu,
            "NIC ({}) should strand more than CPU ({})",
            s.nic,
            s.cpu
        );
        assert!(
            (0.42..0.64).contains(&s.ssd),
            "SSD stranding {} outside the Figure 2 band",
            s.ssd
        );
        assert!(
            (0.18..0.40).contains(&s.nic),
            "NIC stranding {} outside the Figure 2 band",
            s.nic
        );
    }

    #[test]
    fn cpu_is_the_binding_resource() {
        let s = run(12);
        assert!(s.cpu < 0.15, "CPU stranding {} should be small", s.cpu);
    }

    #[test]
    fn packing_is_deterministic_per_seed() {
        let a = run(13);
        let b = run(13);
        assert_eq!(a.placed, b.placed);
        assert_eq!(a.ssd, b.ssd);
    }

    #[test]
    fn stranding_fractions_are_valid() {
        let s = run(14);
        for (name, v) in [
            ("cpu", s.cpu),
            ("mem", s.mem),
            ("ssd", s.ssd),
            ("nic", s.nic),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} = {v}");
        }
        assert!(s.placed > 1000, "placed {}", s.placed);
    }

    #[test]
    fn tiny_fleet_still_measures() {
        let mut cat = VmCatalog::azure_like();
        let mut rng = Rng::new(15);
        let s = pack_fleet(&mut cat, &HostShape::default_cloud(), 1, 50, &mut rng);
        assert!(s.placed >= 5);
        assert!(s.cpu < 0.5);
    }
}
