//! Chunked arenas backing the observation plane's hot paths.
//!
//! The flight recorder and metrics sampler retain up to
//! hundreds-of-thousands of small records per run. Storing them in one
//! growable `Vec` means either a large up-front allocation (capacity ×
//! record size, paid even by short runs) or doubling-reallocations that
//! copy every retained record; per-record heap allocations (the old
//! `Option<String>` trace note) are worse still. The arenas here give
//! both planes O(1) append with *stable* storage — records are written
//! once into fixed-size chunks and never move — and one shared string
//! buffer for variable-length annotations, so the steady-state
//! recording cost is a bump-pointer write.
//!
//! Everything here is deterministic: iteration is insertion order, and
//! no capacity heuristic depends on anything but the push sequence.

/// Records per [`Arena`] chunk. 4096 keeps chunks comfortably inside a
/// few pages for the small Copy-ish records stored here while making
/// the per-chunk allocation cost negligible.
const CHUNK: usize = 4096;

/// A chunked bump arena: O(1) append, stable addresses, insertion-order
/// iteration, and no reallocation-copies as it grows.
///
/// # Examples
///
/// ```
/// use simkit::arena::Arena;
/// let mut a: Arena<u64> = Arena::new();
/// for i in 0..10_000 {
///     a.push(i);
/// }
/// assert_eq!(a.len(), 10_000);
/// assert_eq!(a.get(9_999), Some(&9_999));
/// assert_eq!(a.iter().sum::<u64>(), 9_999 * 10_000 / 2);
/// ```
pub struct Arena<T> {
    chunks: Vec<Vec<T>>,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena { chunks: Vec::new() }
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena (no chunks are allocated until the first
    /// push).
    pub fn new() -> Arena<T> {
        Arena::default()
    }

    /// Appends a record; never moves previously pushed records.
    pub fn push(&mut self, value: T) {
        if self.chunks.last().is_none_or(|c| c.len() == CHUNK) {
            self.chunks.push(Vec::with_capacity(CHUNK));
        }
        self.chunks
            .last_mut()
            .expect("chunk pushed above")
            .push(value);
    }

    /// Number of records pushed.
    pub fn len(&self) -> usize {
        match self.chunks.split_last() {
            Some((last, full)) => full.len() * CHUNK + last.len(),
            None => 0,
        }
    }

    /// True if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty() || self.len() == 0
    }

    /// The `i`-th pushed record, if any.
    pub fn get(&self, i: usize) -> Option<&T> {
        self.chunks.get(i / CHUNK)?.get(i % CHUNK)
    }

    /// Iterates records in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks.iter().flatten()
    }

    /// Drops all records (chunk memory is released).
    pub fn clear(&mut self) {
        self.chunks.clear();
    }
}

impl<'a, T> IntoIterator for &'a Arena<T> {
    type Item = &'a T;
    type IntoIter = std::iter::Flatten<std::slice::Iter<'a, Vec<T>>>;

    fn into_iter(self) -> Self::IntoIter {
        self.chunks.iter().flatten()
    }
}

/// A reference into a [`StrArena`]: a `Copy` `(offset, len)` pair, so
/// records carrying annotations stay `Copy`-friendly and allocation-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StrRef {
    off: usize,
    len: usize,
}

/// An append-only string arena: many small annotations share one
/// buffer, so recording a note is a byte-copy instead of a heap
/// allocation per record.
///
/// # Examples
///
/// ```
/// use simkit::arena::StrArena;
/// let mut a = StrArena::new();
/// let hello = a.intern("hello");
/// let world = a.intern("world");
/// assert_eq!(a.resolve(hello), "hello");
/// assert_eq!(a.resolve(world), "world");
/// ```
#[derive(Default)]
pub struct StrArena {
    buf: String,
}

impl StrArena {
    /// Creates an empty arena.
    pub fn new() -> StrArena {
        StrArena::default()
    }

    /// Copies `s` into the arena, returning its reference.
    pub fn intern(&mut self, s: &str) -> StrRef {
        let off = self.buf.len();
        self.buf.push_str(s);
        StrRef { off, len: s.len() }
    }

    /// Resolves a reference created by [`StrArena::intern`] on this
    /// arena.
    pub fn resolve(&self, r: StrRef) -> &str {
        &self.buf[r.off..r.off + r.len]
    }

    /// Total bytes stored.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Drops all contents; outstanding [`StrRef`]s become invalid.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_iter_across_chunks() {
        let mut a: Arena<usize> = Arena::new();
        let n = CHUNK * 3 + 17;
        for i in 0..n {
            a.push(i);
        }
        assert_eq!(a.len(), n);
        assert!(!a.is_empty());
        assert_eq!(a.get(0), Some(&0));
        assert_eq!(a.get(CHUNK), Some(&CHUNK));
        assert_eq!(a.get(n - 1), Some(&(n - 1)));
        assert_eq!(a.get(n), None);
        let collected: Vec<usize> = a.iter().copied().collect();
        assert_eq!(collected, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn addresses_are_stable_across_growth() {
        let mut a: Arena<u64> = Arena::new();
        a.push(7);
        let p = a.get(0).expect("pushed") as *const u64;
        for i in 0..(CHUNK * 2) as u64 {
            a.push(i);
        }
        assert_eq!(a.get(0).expect("still there") as *const u64, p);
    }

    #[test]
    fn clear_resets() {
        let mut a: Arena<u8> = Arena::new();
        a.push(1);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert_eq!(a.get(0), None);
    }

    #[test]
    fn str_arena_roundtrip() {
        let mut a = StrArena::new();
        let refs: Vec<StrRef> = (0..100).map(|i| a.intern(&format!("note-{i}"))).collect();
        for (i, r) in refs.iter().enumerate() {
            assert_eq!(a.resolve(*r), format!("note-{i}"));
        }
        assert!(!a.is_empty());
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn empty_string_interns_cleanly() {
        let mut a = StrArena::new();
        let r = a.intern("");
        assert_eq!(a.resolve(r), "");
    }
}
