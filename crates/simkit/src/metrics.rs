//! Live metrics plane: a registry of named counters/gauges/histograms
//! sampled on a simulated-time tick into a bounded ring.
//!
//! Where the flight recorder ([`crate::trace`]) answers *where did one
//! operation spend its nanoseconds*, the metrics plane answers *how did
//! the fleet evolve over the run*: per-host queue occupancy, per-domain
//! capacity headroom, per-tenant in-flight and SLO attainment — the
//! continuous telemetry a pooling operator watches, rather than an
//! end-of-run summary.
//!
//! Design constraints (the same contract as the recorder):
//!
//! - **Observation only.** Recording a value never advances a clock and
//!   never branches simulated behavior; runs with metrics on and off
//!   are bit-identical in simulated time.
//! - **Allocation-light hot path.** [`MetricsRecorder::counter_add`] /
//!   [`MetricsRecorder::gauge_set`] write one `f64` in a pre-allocated
//!   slot. All allocation happens at registration and export time.
//! - **Bounded.** Samples live in a chunked [`Arena`] capped at
//!   [`MetricsConfig::capacity`]; overflow increments a drop counter
//!   instead of growing the buffer ([`MetricsRecorder::dropped`]).
//!   Chunks are allocated lazily, so short runs never pay for the full
//!   capacity and long runs never reallocation-copy retained samples.
//! - **Deterministic exports.** Every export is sorted by the fixed key
//!   `(name, host, domain, mhd, device, tenant)` then time, so report text
//!   and JSON are byte-stable across runs.
//!
//! Three export shapes: Chrome/Perfetto counter-track events
//! ([`MetricsRecorder::counter_track_events`], merged into the trace
//! JSON so counters render alongside spans), a schema'd CSV
//! ([`MetricsRecorder::export_csv`]), and a schema'd JSON document
//! ([`MetricsRecorder::export_json`]).

use crate::arena::Arena;
use crate::stats::{Histogram, TimeWeighted};
use crate::time::Nanos;

/// Handle to a registered metric; cheap to copy and store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricId(u32);

/// What a metric measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically accumulating total (sampled as the running sum).
    Counter,
    /// Last-set instantaneous value.
    Gauge,
    /// Value distribution; the sampled timeline is the observation
    /// count, the distribution itself is exported as a summary.
    Histogram,
}

impl MetricKind {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Static label set attached to a metric at registration. Labels are
/// fixed for the metric's lifetime — there is no per-sample label
/// allocation — and double as the export sort key (host, then domain, then
/// MHD, then device kind, then tenant).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Labels {
    /// Host index, for per-host series.
    pub host: Option<u16>,
    /// Failure-domain index, for per-domain series.
    pub domain: Option<u16>,
    /// Multi-headed-device index, for per-MHD series.
    pub mhd: Option<u16>,
    /// Device kind (`"nic"`, `"ssd"`, `"accel"`) or other static tag.
    pub device: Option<&'static str>,
    /// Tenant index, for per-tenant series.
    pub tenant: Option<u16>,
}

impl Labels {
    /// The empty label set (a pod-global series).
    pub const NONE: Labels = Labels {
        host: None,
        domain: None,
        mhd: None,
        device: None,
        tenant: None,
    };

    /// Labels a per-host series.
    pub fn host(host: u16) -> Labels {
        Labels {
            host: Some(host),
            ..Labels::NONE
        }
    }

    /// Labels a per-domain series.
    pub fn domain(domain: u16) -> Labels {
        Labels {
            domain: Some(domain),
            ..Labels::NONE
        }
    }

    /// Labels a per-tenant series.
    pub fn tenant(tenant: u16) -> Labels {
        Labels {
            tenant: Some(tenant),
            ..Labels::NONE
        }
    }

    /// Labels a per-MHD series.
    pub fn mhd(mhd: u16) -> Labels {
        Labels {
            mhd: Some(mhd),
            ..Labels::NONE
        }
    }

    /// Adds an MHD tag to an existing label set.
    pub fn with_mhd(mut self, mhd: u16) -> Labels {
        self.mhd = Some(mhd);
        self
    }

    /// Adds a device-kind tag to an existing label set.
    pub fn with_device(mut self, device: &'static str) -> Labels {
        self.device = Some(device);
        self
    }

    /// Adds a domain tag to an existing label set.
    pub fn with_domain(mut self, domain: u16) -> Labels {
        self.domain = Some(domain);
        self
    }

    /// Renders the label suffix of a series name: `{host=0,domain=1}`,
    /// or the empty string for an unlabeled series.
    pub fn suffix(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        if let Some(h) = self.host {
            parts.push(format!("host={h}"));
        }
        if let Some(d) = self.domain {
            parts.push(format!("domain={d}"));
        }
        if let Some(m) = self.mhd {
            parts.push(format!("mhd={m}"));
        }
        if let Some(dev) = self.device {
            parts.push(format!("device={dev}"));
        }
        if let Some(t) = self.tenant {
            parts.push(format!("tenant={t}"));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    }
}

/// Recorder construction parameters.
///
/// `Default` honours the environment, mirroring `CXL_TRACE`/`CXL_AUDIT`:
/// `CXL_METRICS=<interval>` sets the sampling tick (`500us`, `2ms`,
/// `1s`, or a bare nanosecond count; `1`/`on` selects the 1 ms
/// default), and `CXL_METRICS_CAPACITY=<n>` overrides the sample-ring
/// capacity.
#[derive(Clone, Debug)]
pub struct MetricsConfig {
    /// Simulated-time distance between samples.
    pub interval: Nanos,
    /// Maximum retained samples; the ring never grows past this, and
    /// overflow increments [`MetricsRecorder::dropped`].
    pub capacity: usize,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        // simlint: allow(wall-clock) -- sanctioned config entry point: CXL_METRICS selects the sampling interval only, never simulated behavior
        let interval = std::env::var("CXL_METRICS")
            .ok()
            .and_then(|v| parse_interval(&v))
            .unwrap_or(Nanos::from_millis(1));
        // simlint: allow(wall-clock) -- sanctioned config entry point: CXL_METRICS_CAPACITY sizes the sample ring, never simulated behavior
        let capacity = std::env::var("CXL_METRICS_CAPACITY")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1 << 16);
        MetricsConfig { interval, capacity }
    }
}

impl MetricsConfig {
    /// True when the environment asks for metrics at all
    /// (`CXL_METRICS` set to anything but empty/`0`/`off`), mirroring
    /// `CXL_TRACE`.
    pub fn env_enabled() -> bool {
        !matches!(
            // simlint: allow(wall-clock) -- sanctioned config entry point: CXL_METRICS toggles the sampler only
            std::env::var("CXL_METRICS").as_deref(),
            Err(_) | Ok("") | Ok("0") | Ok("off") | Ok("OFF")
        )
    }
}

/// Parses a sampling interval: `<n>ns`/`<n>us`/`<n>ms`/`<n>s` or a bare
/// nanosecond count. `1` and `on` mean "enabled at the default", so
/// they parse to `None` and the caller falls back.
pub fn parse_interval(s: &str) -> Option<Nanos> {
    let s = s.trim();
    if s == "1" || s.eq_ignore_ascii_case("on") {
        return None;
    }
    let (digits, scale) = if let Some(d) = s.strip_suffix("ns") {
        (d, 1u64)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        (s, 1)
    };
    let n: u64 = digits.trim().parse().ok()?;
    if n == 0 {
        return None;
    }
    n.checked_mul(scale).map(Nanos)
}

/// One registered metric and its live value.
struct Metric {
    name: &'static str,
    labels: Labels,
    kind: MetricKind,
    /// Counters: running total. Gauges: last set value. Histograms:
    /// observation count.
    value: f64,
    /// Time-weighted view fed at sample ticks, so exports can quote
    /// averages consistent with [`TimeWeighted`] elsewhere.
    tw: TimeWeighted,
    /// Distribution, histogram metrics only.
    hist: Option<Histogram>,
}

/// One sampled point: metric index, simulated time, value.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Simulated time of the sampling tick.
    pub at: Nanos,
    /// Index into the registry (dense, registration order).
    pub metric: u32,
    /// The metric's value at the tick.
    pub value: f64,
}

/// One exported series: a metric plus its sampled timeline.
#[derive(Clone, Debug)]
pub struct Series {
    /// Metric name, e.g. `"domain/free_bytes"`.
    pub name: &'static str,
    /// Static labels.
    pub labels: Labels,
    /// Kind.
    pub kind: MetricKind,
    /// `(time, value)` points in time order.
    pub points: Vec<(Nanos, f64)>,
}

/// The metrics registry + sampler. Owned by the fabric (mirroring the
/// trace recorder) so every layer that already holds `&mut Fabric` can
/// record without signature churn.
pub struct MetricsRecorder {
    config: MetricsConfig,
    metrics: Vec<Metric>,
    samples: Arena<Sample>,
    dropped: u64,
    next_tick: Nanos,
}

impl MetricsRecorder {
    /// Creates a recorder; sample chunks are arena-allocated on demand,
    /// so retained samples are never reallocation-copied and an idle
    /// recorder costs nothing.
    pub fn new(config: MetricsConfig) -> MetricsRecorder {
        let next_tick = config.interval;
        MetricsRecorder {
            config,
            metrics: Vec::new(),
            samples: Arena::new(),
            dropped: 0,
            next_tick,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MetricsConfig {
        &self.config
    }

    /// Registers a metric (idempotent: re-registering the same
    /// `(name, labels)` returns the existing handle, whatever the
    /// kind). Registration order is the dense-id order; callers must
    /// register deterministically.
    pub fn register(&mut self, name: &'static str, kind: MetricKind, labels: Labels) -> MetricId {
        if let Some(i) = self
            .metrics
            .iter()
            .position(|m| m.name == name && m.labels == labels)
        {
            return MetricId(i as u32);
        }
        let hist = match kind {
            MetricKind::Histogram => Some(Histogram::new()),
            _ => None,
        };
        self.metrics.push(Metric {
            name,
            labels,
            kind,
            value: 0.0,
            tw: TimeWeighted::new(0.0),
            hist,
        });
        MetricId(self.metrics.len() as u32 - 1)
    }

    /// Registers a counter.
    pub fn counter(&mut self, name: &'static str, labels: Labels) -> MetricId {
        self.register(name, MetricKind::Counter, labels)
    }

    /// Registers a gauge.
    pub fn gauge(&mut self, name: &'static str, labels: Labels) -> MetricId {
        self.register(name, MetricKind::Gauge, labels)
    }

    /// Registers a histogram.
    pub fn histogram(&mut self, name: &'static str, labels: Labels) -> MetricId {
        self.register(name, MetricKind::Histogram, labels)
    }

    /// Adds to a counter's running total (hot path: one add).
    pub fn counter_add(&mut self, id: MetricId, delta: f64) {
        if let Some(m) = self.metrics.get_mut(id.0 as usize) {
            m.value += delta;
        }
    }

    /// Sets a gauge (hot path: one store).
    pub fn gauge_set(&mut self, id: MetricId, value: f64) {
        if let Some(m) = self.metrics.get_mut(id.0 as usize) {
            m.value = value;
        }
    }

    /// Records one observation into a histogram metric; the sampled
    /// timeline tracks the observation count.
    pub fn observe(&mut self, id: MetricId, value: u64) {
        if let Some(m) = self.metrics.get_mut(id.0 as usize) {
            if let Some(h) = m.hist.as_mut() {
                h.record(value);
                m.value = h.count() as f64;
            }
        }
    }

    /// Looks up a registered metric by identity, without registering.
    pub fn find(&self, name: &str, labels: Labels) -> Option<MetricId> {
        self.metrics
            .iter()
            .position(|m| m.name == name && m.labels == labels)
            .map(|i| MetricId(i as u32))
    }

    /// A metric's current (unsampled) value.
    pub fn value(&self, id: MetricId) -> f64 {
        self.metrics.get(id.0 as usize).map_or(0.0, |m| m.value)
    }

    /// The time-weighted view of a metric, fed at sample ticks.
    pub fn time_weighted(&self, id: MetricId) -> Option<&TimeWeighted> {
        self.metrics.get(id.0 as usize).map(|m| &m.tw)
    }

    /// The distribution behind a histogram metric, if any.
    pub fn histogram_of(&self, id: MetricId) -> Option<&Histogram> {
        self.metrics
            .get(id.0 as usize)
            .and_then(|m| m.hist.as_ref())
    }

    /// True when simulated time `now` has reached the next sampling
    /// tick. Callers refresh their gauges only when this is true, then
    /// call [`MetricsRecorder::sample`].
    pub fn tick_due(&self, now: Nanos) -> bool {
        now >= self.next_tick
    }

    /// Records one sample row per registered metric at simulated time
    /// `now` and advances the tick. A no-op when the tick is not due,
    /// so callers may invoke it unconditionally from their pump loop.
    pub fn sample(&mut self, now: Nanos) {
        if now < self.next_tick {
            return;
        }
        for (i, m) in self.metrics.iter_mut().enumerate() {
            m.tw.set(now, m.value);
            if self.samples.len() < self.config.capacity {
                self.samples.push(Sample {
                    at: now,
                    metric: i as u32,
                    value: m.value,
                });
            } else {
                self.dropped += 1;
            }
        }
        while self.next_tick <= now {
            self.next_tick += self.config.interval;
        }
    }

    /// Iterates recorded samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    /// Number of retained samples.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// Samples not retained because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of registered metrics.
    pub fn metric_count(&self) -> usize {
        self.metrics.len()
    }

    /// Distinct metric names, sorted.
    pub fn metric_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.metrics.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// All series with their sampled points, sorted by the fixed export
    /// key `(name, host, domain, mhd, device, tenant)`.
    pub fn series(&self) -> Vec<Series> {
        let mut order: Vec<usize> = (0..self.metrics.len()).collect();
        order.sort_by_key(|&i| (self.metrics[i].name, self.metrics[i].labels));
        // Map metric index -> slot in the sorted output.
        let mut slot = vec![0usize; self.metrics.len()];
        for (s, &i) in order.iter().enumerate() {
            slot[i] = s;
        }
        let mut out: Vec<Series> = order
            .iter()
            .map(|&i| Series {
                name: self.metrics[i].name,
                labels: self.metrics[i].labels,
                kind: self.metrics[i].kind,
                points: Vec::new(),
            })
            .collect();
        for s in &self.samples {
            out[slot[s.metric as usize]].points.push((s.at, s.value));
        }
        out
    }

    /// Chrome/Perfetto counter-track events (`"ph":"C"`), one JSON
    /// object string per sampled point, in export-key order. Merged
    /// into the trace export so counters render alongside spans.
    pub fn counter_track_events(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.samples.len());
        for series in self.series() {
            let track = format!("{}{}", series.name, series.labels.suffix());
            for (at, v) in &series.points {
                let ts = at.as_nanos() as f64 / 1000.0;
                out.push(format!(
                    "{{\"ph\":\"C\",\"pid\":0,\"name\":{},\"ts\":{ts},\
                     \"args\":{{\"value\":{}}}}}",
                    json_string(&track),
                    fmt_value(*v),
                ));
            }
        }
        out
    }

    /// Schema'd CSV dump: header
    /// `time_ns,name,host,domain,device,tenant,value`, rows in
    /// export-key order then time. Absent labels render as empty
    /// fields.
    pub fn export_csv(&self) -> String {
        let mut out = String::from("time_ns,name,host,domain,mhd,device,tenant,value\n");
        for series in self.series() {
            let host = series.labels.host.map_or(String::new(), |v| v.to_string());
            let domain = series
                .labels
                .domain
                .map_or(String::new(), |v| v.to_string());
            let mhd = series.labels.mhd.map_or(String::new(), |v| v.to_string());
            let device = series.labels.device.unwrap_or("");
            let tenant = series
                .labels
                .tenant
                .map_or(String::new(), |v| v.to_string());
            for (at, v) in &series.points {
                out.push_str(&format!(
                    "{},{},{host},{domain},{mhd},{device},{tenant},{}\n",
                    at.as_nanos(),
                    series.name,
                    fmt_value(*v),
                ));
            }
        }
        out
    }

    /// Schema'd JSON dump (`cxl-pool-metrics/v1`): interval, drop
    /// count, and one series object per metric with its labels and
    /// `[time_ns, value]` points, in export-key order. Parseable by
    /// the vendored `serde_json`.
    pub fn export_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"cxl-pool-metrics/v1\",\n");
        out.push_str(&format!(
            "  \"interval_ns\": {},\n  \"dropped\": {},\n  \"series\": [",
            self.config.interval.as_nanos(),
            self.dropped
        ));
        let series = self.series();
        for (i, s) in series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            out.push_str(&json_string(s.name));
            out.push_str(", \"kind\": ");
            out.push_str(&json_string(s.kind.name()));
            out.push_str(", \"labels\": {");
            let mut first = true;
            let mut label = |out: &mut String, key: &str, val: String| {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!("\"{key}\": {val}"));
            };
            if let Some(h) = s.labels.host {
                label(&mut out, "host", h.to_string());
            }
            if let Some(d) = s.labels.domain {
                label(&mut out, "domain", d.to_string());
            }
            if let Some(m) = s.labels.mhd {
                label(&mut out, "mhd", m.to_string());
            }
            if let Some(dev) = s.labels.device {
                label(&mut out, "device", json_string(dev));
            }
            if let Some(t) = s.labels.tenant {
                label(&mut out, "tenant", t.to_string());
            }
            out.push_str("}, \"points\": [");
            for (j, (at, v)) in s.points.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{}, {}]", at.as_nanos(), fmt_value(*v)));
            }
            out.push_str("]}");
        }
        if !series.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Formats a sample value: integral magnitudes below 2^53 print as
/// integers (byte-stable, no float noise), everything else as the
/// shortest round-trippable float. Non-finite values clamp to 0.
pub fn fmt_value(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        (v as i64).to_string()
    } else {
        format!("{v:?}")
    }
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(interval: u64, capacity: usize) -> MetricsConfig {
        MetricsConfig {
            interval: Nanos(interval),
            capacity,
        }
    }

    #[test]
    fn registration_is_idempotent_and_dense() {
        let mut m = MetricsRecorder::new(cfg(100, 64));
        let a = m.gauge("pool/free_bytes", Labels::NONE);
        let b = m.gauge("host/served_ops", Labels::host(0));
        let a2 = m.gauge("pool/free_bytes", Labels::NONE);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(m.metric_count(), 2);
    }

    #[test]
    fn sampling_ticks_at_interval() {
        let mut m = MetricsRecorder::new(cfg(100, 64));
        let g = m.gauge("g", Labels::NONE);
        assert!(!m.tick_due(Nanos(99)));
        m.sample(Nanos(99));
        assert_eq!(m.sample_count(), 0);
        m.gauge_set(g, 7.0);
        m.sample(Nanos(100));
        m.gauge_set(g, 9.0);
        m.sample(Nanos(150)); // not due: next tick is 200
        m.sample(Nanos(230));
        let pts: Vec<(u64, f64)> = m.samples().map(|s| (s.at.as_nanos(), s.value)).collect();
        assert_eq!(pts, vec![(100, 7.0), (230, 9.0)]);
    }

    #[test]
    fn counters_accumulate_and_histograms_count() {
        let mut m = MetricsRecorder::new(cfg(10, 64));
        let c = m.counter("c", Labels::NONE);
        let h = m.histogram("h", Labels::NONE);
        m.counter_add(c, 2.0);
        m.counter_add(c, 3.0);
        m.observe(h, 50);
        m.observe(h, 70);
        assert_eq!(m.value(c), 5.0);
        assert_eq!(m.value(h), 2.0);
        assert_eq!(m.histogram_of(h).expect("hist").max(), 70);
    }

    #[test]
    fn ring_capacity_bounds_samples_and_counts_drops() {
        let mut m = MetricsRecorder::new(cfg(10, 8));
        for name in ["a", "b", "c"] {
            m.gauge(name, Labels::NONE);
        }
        for t in 1..=5u64 {
            m.sample(Nanos(t * 10));
        }
        // 5 ticks x 3 metrics = 15 attempts; 8 kept, 7 dropped.
        assert_eq!(m.sample_count(), 8);
        assert_eq!(m.dropped(), 7);
    }

    #[test]
    fn series_sorted_by_fixed_key() {
        let mut m = MetricsRecorder::new(cfg(10, 64));
        m.gauge("z/metric", Labels::NONE);
        m.gauge("a/metric", Labels::host(1));
        m.gauge("a/metric", Labels::host(0));
        m.sample(Nanos(10));
        let s = m.series();
        let keys: Vec<(&str, Option<u16>)> = s.iter().map(|s| (s.name, s.labels.host)).collect();
        assert_eq!(
            keys,
            vec![
                ("a/metric", Some(0)),
                ("a/metric", Some(1)),
                ("z/metric", None)
            ]
        );
        assert!(s.iter().all(|s| s.points.len() == 1));
    }

    #[test]
    fn time_weighted_agrees_with_sampler() {
        // Drive the recorder and an independent TimeWeighted with the
        // same (tick, value) schedule: the recorder's internal view
        // must match exactly.
        let mut m = MetricsRecorder::new(cfg(100, 64));
        let g = m.gauge("g", Labels::NONE);
        let mut tw = TimeWeighted::new(0.0);
        for (t, v) in [(100u64, 4.0f64), (200, 8.0), (300, 2.0)] {
            m.gauge_set(g, v);
            m.sample(Nanos(t));
            tw.set(Nanos(t), v);
        }
        let ours = m.time_weighted(g).expect("registered");
        assert_eq!(ours.current(), tw.current());
        assert_eq!(ours.peak(), tw.peak());
        assert_eq!(ours.average(Nanos(400)), tw.average(Nanos(400)));
    }

    #[test]
    fn exports_are_stable_and_well_formed() {
        let mut m = MetricsRecorder::new(cfg(10, 64));
        let g = m.gauge("domain/free_bytes", Labels::domain(1));
        let c = m.counter("tenant/completed", Labels::tenant(2));
        m.gauge_set(g, 1024.0);
        m.counter_add(c, 3.0);
        m.sample(Nanos(10));
        let csv = m.export_csv();
        assert!(csv.starts_with("time_ns,name,host,domain,mhd,device,tenant,value\n"));
        assert!(csv.contains("10,domain/free_bytes,,1,,,,1024\n"));
        assert!(csv.contains("10,tenant/completed,,,,,2,3\n"));
        let json = m.export_json();
        assert!(json.contains("\"schema\": \"cxl-pool-metrics/v1\""));
        assert!(json.contains("\"domain\": 1"));
        assert!(json.contains("[10, 1024]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let tracks = m.counter_track_events();
        assert_eq!(tracks.len(), 2);
        assert!(tracks[0].contains("\"ph\":\"C\""));
        assert!(tracks[0].contains("domain/free_bytes{domain=1}"));
        // Identical recording -> byte-identical exports.
        let csv2 = m.export_csv();
        assert_eq!(csv, csv2);
    }

    #[test]
    fn interval_parsing_accepts_units() {
        assert_eq!(parse_interval("500ns"), Some(Nanos(500)));
        assert_eq!(parse_interval("50us"), Some(Nanos(50_000)));
        assert_eq!(parse_interval("2ms"), Some(Nanos(2_000_000)));
        assert_eq!(parse_interval("1s"), Some(Nanos(1_000_000_000)));
        assert_eq!(parse_interval("12345"), Some(Nanos(12_345)));
        assert_eq!(parse_interval("1"), None);
        assert_eq!(parse_interval("on"), None);
        assert_eq!(parse_interval("bogus"), None);
        assert_eq!(parse_interval("0"), None);
    }
}
