//! Deterministic discrete-event simulation kernel.
//!
//! `simkit` is the substrate every simulator crate in this workspace is
//! built on. It provides:
//!
//! - a nanosecond-resolution simulated clock ([`Nanos`]),
//! - a deterministic event queue and run loop ([`Scheduler`], [`run`]),
//! - seeded pseudo-random number generation and common distributions
//!   ([`rng`]),
//! - queueing primitives for modelling bandwidth-limited resources
//!   ([`server::TimelineServer`]),
//! - statistics collection ([`stats::Histogram`], [`stats::TimeWeighted`])
//!   and table formatting ([`table`]),
//! - a bounded flight recorder with per-stage latency attribution and
//!   Chrome/Perfetto trace export ([`trace`]),
//! - a simulated-time metrics registry and sampler with counter-track,
//!   CSV, and JSON exports ([`metrics`]),
//! - a wall-clock DES self-profiler ([`Profiler`]) quoting
//!   events/wall-s and simulated-ns/wall-s without touching simulated
//!   time.
//!
//! Determinism is a hard requirement: two runs with the same seed and the
//! same event schedule must produce bit-identical results. The event queue
//! breaks timestamp ties by insertion sequence number, and the PRNG is
//! implemented in-crate (SplitMix64 / xoshiro256++) so results do not
//! depend on external crate version churn.
//!
//! # Examples
//!
//! ```
//! use simkit::{Nanos, Scheduler, World, run};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! enum Ev {
//!     Tick,
//! }
//!
//! impl World for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, now: Nanos, _ev: Ev, sched: &mut Scheduler<Ev>) {
//!         self.fired += 1;
//!         if self.fired < 3 {
//!             sched.schedule(now + Nanos(100), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut world = Counter { fired: 0 };
//! let mut sched = Scheduler::new();
//! sched.schedule(Nanos(0), Ev::Tick);
//! let end = run(&mut world, &mut sched, Nanos::MAX);
//! assert_eq!(world.fired, 3);
//! assert_eq!(end, Nanos(200));
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod hash;
pub mod metrics;
pub mod rng;
pub mod server;
pub mod stats;
pub mod table;
pub mod time;
pub mod trace;

mod sched;

pub use sched::{
    run, run_until, CalendarQueue, EventQueue, Profiler, ProfilerReport, ReferenceHeap, Scheduler,
    World,
};
pub use time::Nanos;
