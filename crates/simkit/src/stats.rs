//! Statistics collection: latency histograms, time-weighted gauges, and
//! summary reduction.

use serde::Serialize;

use crate::time::Nanos;

/// An HDR-style histogram with logarithmic buckets, tuned for latencies
/// spanning nanoseconds to seconds.
///
/// Values are bucketed with ~1.5% relative error (64 sub-buckets per
/// power of two), which is far below the noise floor of any experiment in
/// this workspace. Recording is O(1); quantile queries are O(buckets).
///
/// # Examples
///
/// ```
/// use simkit::stats::Histogram;
/// let mut h = Histogram::new();
/// for v in [100, 200, 300, 400, 500] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.quantile(0.5) >= 290 && h.quantile(0.5) <= 310);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

const SUB_BUCKET_BITS: u32 = 6;
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;

fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let magnitude = 63 - value.leading_zeros();
    let shift = magnitude - SUB_BUCKET_BITS;
    let sub = (value >> shift) - SUB_BUCKETS;
    ((magnitude - SUB_BUCKET_BITS + 1) as u64 * SUB_BUCKETS + sub) as usize
}

fn bucket_midpoint(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let magnitude = index / SUB_BUCKETS - 1 + SUB_BUCKET_BITS as u64;
    let sub = index % SUB_BUCKETS + SUB_BUCKETS;
    let shift = magnitude - SUB_BUCKET_BITS as u64;
    // Midpoint of [sub << shift, (sub+1) << shift).
    (sub << shift) + (1 << shift) / 2
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one raw value.
    pub fn record(&mut self, value: u64) {
        let idx = bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a latency.
    pub fn record_nanos(&mut self, value: Nanos) {
        self.record(value.as_nanos());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of recorded values (exact, not bucketed).
    ///
    /// Returns 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Smallest recorded value (exact). Returns 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact). Returns 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]`, approximated to the bucket
    /// midpoint. Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_midpoint(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Discards every recorded value, keeping the allocated buckets.
    ///
    /// Workload harnesses use this at the warmup/measurement boundary:
    /// record through warmup (so the buckets are hot), then clear and
    /// measure.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Reduces to a serializable summary.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            min: self.min(),
            p10: self.quantile(0.10),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max(),
        }
    }

    /// Full bucket contents as `(bucket_midpoint, count)` pairs, one per
    /// non-empty bucket.
    ///
    /// This is the explicit escape hatch for consumers that genuinely
    /// need the raw distribution; serialized output should prefer
    /// [`Histogram::summary`], which is compact and stable across
    /// bucket-layout changes.
    pub fn bucket_counts(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_midpoint(i).clamp(self.min, self.max), c))
            .collect()
    }

    /// Returns `(value, cumulative_fraction)` pairs suitable for plotting
    /// a CDF, one point per non-empty bucket.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut points = Vec::new();
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            points.push((
                bucket_midpoint(i).clamp(self.min, self.max),
                seen as f64 / self.count as f64,
            ));
        }
        points
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A reduced view of a [`Histogram`]: count, mean, and key quantiles.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Exact arithmetic mean.
    pub mean: f64,
    /// Exact minimum.
    pub min: u64,
    /// 10th percentile (bucket-approximated).
    pub p10: u64,
    /// Median (bucket-approximated).
    pub p50: u64,
    /// 90th percentile (bucket-approximated).
    pub p90: u64,
    /// 99th percentile (bucket-approximated).
    pub p99: u64,
    /// 99.9th percentile (bucket-approximated).
    pub p999: u64,
    /// Exact maximum.
    pub max: u64,
}

/// A time-weighted average of a piecewise-constant signal (queue depth,
/// devices in use, utilization).
///
/// Call [`TimeWeighted::set`] whenever the value changes; the average
/// weights each value by how long it was held.
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    last_time: Nanos,
    last_value: f64,
    weighted_sum: f64,
    total_time: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Creates a gauge with initial value `value` at time zero.
    pub fn new(value: f64) -> TimeWeighted {
        TimeWeighted {
            last_time: Nanos::ZERO,
            last_value: value,
            weighted_sum: 0.0,
            total_time: 0.0,
            peak: value,
        }
    }

    /// Records that the signal changed to `value` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update.
    pub fn set(&mut self, now: Nanos, value: f64) {
        assert!(now >= self.last_time, "time went backwards");
        let dt = (now - self.last_time).as_nanos() as f64;
        self.weighted_sum += self.last_value * dt;
        self.total_time += dt;
        self.last_time = now;
        self.last_value = value;
        self.peak = self.peak.max(value);
    }

    /// Adds `delta` to the current value at time `now`.
    pub fn add(&mut self, now: Nanos, delta: f64) {
        let v = self.last_value + delta;
        self.set(now, v);
    }

    /// Current instantaneous value.
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// Peak value observed.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted average over `[0, now]`.
    pub fn average(&self, now: Nanos) -> f64 {
        let dt = (now.saturating_sub(self.last_time)).as_nanos() as f64;
        let total = self.total_time + dt;
        if total == 0.0 {
            return self.last_value;
        }
        (self.weighted_sum + self.last_value * dt) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS - 1);
        // Below SUB_BUCKETS every value has its own bucket; the median of
        // 0..64 is the 32nd smallest value, which is 31.
        assert_eq!(h.quantile(0.5), SUB_BUCKETS / 2 - 1);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.02, "q={q}: got {got}, want {expect}, rel {rel}");
        }
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut h = Histogram::new();
        for v in [10, 20, 30, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 1_000_000);
        assert!((h.mean() - 250_015.0).abs() < 1e-9);
    }

    #[test]
    fn clear_resets_to_empty() {
        let mut h = Histogram::new();
        for v in [10, 1_000, 100_000] {
            h.record(v);
        }
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.99), 0);
        // Recording after clear behaves like a fresh histogram.
        h.record(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 42);
        assert_eq!(h.max(), 42);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(100);
        b.record(200);
        b.record(300);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 100);
        assert_eq!(a.max(), 300);
    }

    #[test]
    fn bucket_counts_cover_all_samples() {
        let mut h = Histogram::new();
        for v in [5u64, 5, 500, 50_000] {
            h.record(v);
        }
        let buckets = h.bucket_counts();
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), h.count());
        // Exactly three distinct buckets, midpoints within range.
        assert_eq!(buckets.len(), 3);
        for &(mid, _) in &buckets {
            assert!(mid >= h.min() && mid <= h.max());
        }
    }

    #[test]
    fn cdf_is_monotonic_and_ends_at_one() {
        let mut h = Histogram::new();
        for v in [5u64, 50, 500, 5_000, 50_000] {
            for _ in 0..10 {
                h.record(v);
            }
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        let mut prev = 0.0;
        for &(_, f) in &cdf {
            assert!(f >= prev);
            prev = f;
        }
        assert!((cdf.last().expect("nonempty").1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_fields_are_ordered() {
        let mut h = Histogram::new();
        let mut rng = crate::rng::Rng::new(1);
        for _ in 0..10_000 {
            h.record(rng.range(100, 10_000));
        }
        let s = h.summary();
        assert!(s.min <= s.p10 && s.p10 <= s.p50);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
        assert!(s.p99 <= s.p999 && s.p999 <= s.max);
    }

    #[test]
    fn time_weighted_average() {
        let mut g = TimeWeighted::new(0.0);
        g.set(Nanos(100), 10.0); // 0 for [0,100)
        g.set(Nanos(200), 0.0); // 10 for [100,200)
        assert!((g.average(Nanos(200)) - 5.0).abs() < 1e-9);
        // Holding 0 for another 200ns halves the average again.
        assert!((g.average(Nanos(400)) - 2.5).abs() < 1e-9);
        assert_eq!(g.peak(), 10.0);
    }

    #[test]
    fn time_weighted_add_tracks_deltas() {
        let mut g = TimeWeighted::new(0.0);
        g.add(Nanos(0), 3.0);
        g.add(Nanos(50), 2.0);
        assert_eq!(g.current(), 5.0);
        g.add(Nanos(100), -5.0);
        assert_eq!(g.current(), 0.0);
        // [0,50)=3, [50,100)=5 -> avg over [0,100) = 4.
        assert!((g.average(Nanos(100)) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_roundtrip_error_is_small() {
        for v in [
            1u64,
            63,
            64,
            100,
            1_000,
            123_456,
            10_000_000,
            u32::MAX as u64,
        ] {
            let mid = bucket_midpoint(bucket_index(v));
            let rel = (mid as f64 - v as f64).abs() / v as f64;
            assert!(rel < 0.016, "v={v} mid={mid} rel={rel}");
        }
    }
}
