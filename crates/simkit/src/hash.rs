//! Deterministic, fast hashing for simulation-state maps.
//!
//! `std`'s default [`HashMap`] hasher state is
//! randomly seeded per process — good DoS armor for servers, wrong for
//! a deterministic simulator: it makes hash-table *layout* differ run
//! to run, which costs SipHash throughput on every datapath lookup and
//! turns any accidental iteration-order dependence into a heisenbug.
//! [`DetHashMap`] replaces the hasher with a fixed-seed multiply-rotate
//! hash (the FxHash construction): 2-3× faster on the small integer
//! keys that dominate simulation state (line addresses, page numbers),
//! and byte-identical table layout on every run.
//!
//! Determinism of layout is **not** license to iterate: iteration
//! order still depends on insertion history and capacity, so the
//! simlint `hash-iter` rule applies to these maps exactly as it does
//! to the std ones. Use these maps for point lookups; iterate sorted
//! structures.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` with the deterministic [`DetHasher`].
pub type DetHashMap<K, V> = HashMap<K, V, BuildHasherDefault<DetHasher>>;

/// A `HashSet` with the deterministic [`DetHasher`].
pub type DetHashSet<T> = HashSet<T, BuildHasherDefault<DetHasher>>;

/// Odd multiplier derived from the golden ratio (`2^64 / φ`), the
/// standard Fibonacci-hashing constant: consecutive keys scatter to
/// well-separated buckets, which is exactly the access pattern of
/// line-address and page-number keys.
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// A fixed-seed multiply-rotate hasher (FxHash construction).
///
/// Each input word is folded in as
/// `state = (rotl(state, 5) ^ word) * SEED`. Not DoS-resistant by
/// design — simulation keys are simulator-generated, not adversarial —
/// and in exchange a `u64` key hashes in a handful of cycles instead
/// of SipHash's per-byte rounds.
#[derive(Clone, Copy, Debug, Default)]
pub struct DetHasher {
    state: u64,
}

impl DetHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(v: u64) -> u64 {
        let mut h = DetHasher::default();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn same_input_same_hash() {
        assert_eq!(hash_of(0xdead_beef), hash_of(0xdead_beef));
        assert_ne!(hash_of(1), hash_of(2));
    }

    #[test]
    fn consecutive_keys_scatter() {
        // Fibonacci multiplier property: neighbours land far apart in
        // the high bits the table actually uses.
        let a = hash_of(0x1000);
        let b = hash_of(0x1040);
        assert_ne!(a >> 57, b >> 57, "top bits must differ: {a:#x} {b:#x}");
    }

    #[test]
    fn byte_stream_matches_word_writes_for_aligned_input() {
        let mut h1 = DetHasher::default();
        h1.write(&42u64.to_le_bytes());
        let mut h2 = DetHasher::default();
        h2.write_u64(42);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: DetHashMap<u64, u32> = DetHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 64, i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 64)), Some(&(i as u32)));
        }
        let mut s: DetHashSet<u64> = DetHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
