//! Queueing primitives for modelling bandwidth- and occupancy-limited
//! resources without explicit token-by-token event traffic.

use crate::time::{transfer_time, Nanos};

/// A work-conserving FIFO single-server resource modelled as a busy
/// timeline.
///
/// `serve(now, work)` answers "if a job needing `work` time arrives at
/// `now`, when does it finish?" — the job starts at `max(now,
/// next_free)` and occupies the server for `work`. This models a PCIe
/// link, a DRAM channel, a NIC serializer, or a CPU core with exact FIFO
/// queueing semantics at a fraction of the event cost.
///
/// # Out-of-order bookings
///
/// FIFO timelines assume callers book work in nondecreasing time
/// order. Actor-timeline simulations violate that: stage N of packet
/// *i* may book at a *later* time than stage 1 of packet *i+1*, and a
/// strict FIFO would then stall packet *i+1* behind a reservation made
/// in its future — a pure artifact. When `serve` sees time go
/// backwards relative to the previous booking, it completes the job at
/// `now + work` without touching the FIFO tail, as if a parallel tag
/// or past idle gap absorbed it (DRAM banks and PCIe links really do
/// have that parallelism). The cost of the approximation: a resource
/// that is *both* driven out of order *and* saturated can over-serve.
/// Model saturating bottlenecks (CPU cores, line rates) with in-order
/// bookings — then FIFO semantics are exact; utilization accounting is
/// exact in all cases.
///
/// # Examples
///
/// ```
/// use simkit::{Nanos, server::TimelineServer};
/// let mut link = TimelineServer::new();
/// assert_eq!(link.serve(Nanos(0), Nanos(10)), Nanos(10));
/// // Arrives while busy: queues behind the first job.
/// assert_eq!(link.serve(Nanos(5), Nanos(10)), Nanos(20));
/// // Arrives after idle gap: starts immediately.
/// assert_eq!(link.serve(Nanos(100), Nanos(10)), Nanos(110));
/// ```
#[derive(Clone, Debug, Default)]
pub struct TimelineServer {
    next_free: Nanos,
    last_arrival: Nanos,
    busy: Nanos,
    jobs: u64,
}

impl TimelineServer {
    /// Creates an idle server.
    pub fn new() -> TimelineServer {
        TimelineServer::default()
    }

    /// Enqueues a job arriving at `now` that needs `work` service time;
    /// returns its completion time.
    pub fn serve(&mut self, now: Nanos, work: Nanos) -> Nanos {
        self.busy += work;
        self.jobs += 1;
        if now < self.last_arrival {
            // Out-of-order booking (see type docs): absorbed by
            // parallel-tag/idle capacity, FIFO tail untouched.
            return now + work;
        }
        self.last_arrival = now;
        let start = self.next_free.max(now);
        let done = start + work;
        self.next_free = done;
        done
    }

    /// Returns the queueing delay a job arriving at `now` would see
    /// before starting service, without enqueueing it.
    pub fn backlog(&self, now: Nanos) -> Nanos {
        self.next_free.saturating_sub(now)
    }

    /// True if a job arriving at `now` would start immediately.
    pub fn is_idle(&self, now: Nanos) -> bool {
        self.next_free <= now
    }

    /// Total service time dispensed so far.
    pub fn busy_time(&self) -> Nanos {
        self.busy
    }

    /// Number of jobs served.
    pub fn jobs_served(&self) -> u64 {
        self.jobs
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: Nanos) -> f64 {
        if horizon == Nanos::ZERO {
            return 0.0;
        }
        self.busy.as_nanos() as f64 / horizon.as_nanos() as f64
    }

    /// Resets to idle, clearing statistics.
    pub fn reset(&mut self) {
        *self = TimelineServer::default();
    }
}

/// A byte-granular bandwidth pipe: a [`TimelineServer`] whose service
/// time is derived from a transfer size and a fixed bandwidth.
///
/// Models a serialized link (PCIe/CXL lane group, Ethernet port): each
/// transfer occupies the pipe for `bytes / bandwidth`, FIFO-ordered.
#[derive(Clone, Debug)]
pub struct BandwidthPipe {
    server: TimelineServer,
    gbytes_per_sec: f64,
}

impl BandwidthPipe {
    /// Creates a pipe with the given bandwidth in GB/s.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not strictly positive.
    pub fn new(gbytes_per_sec: f64) -> BandwidthPipe {
        assert!(
            gbytes_per_sec > 0.0,
            "bandwidth must be positive, got {gbytes_per_sec}"
        );
        BandwidthPipe {
            server: TimelineServer::new(),
            gbytes_per_sec,
        }
    }

    /// Transfers `bytes` starting no earlier than `now`; returns the
    /// completion time.
    pub fn transfer(&mut self, now: Nanos, bytes: u64) -> Nanos {
        let work = transfer_time(bytes, self.gbytes_per_sec);
        self.server.serve(now, work)
    }

    /// Configured bandwidth in GB/s.
    pub fn bandwidth(&self) -> f64 {
        self.gbytes_per_sec
    }

    /// Queueing delay a transfer arriving at `now` would see.
    pub fn backlog(&self, now: Nanos) -> Nanos {
        self.server.backlog(now)
    }

    /// Total bytes-worth of busy time dispensed, as utilization of
    /// `[0, horizon]`.
    pub fn utilization(&self, horizon: Nanos) -> f64 {
        self.server.utilization(horizon)
    }

    /// Number of transfers served.
    pub fn transfers(&self) -> u64 {
        self.server.jobs_served()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = TimelineServer::new();
        assert_eq!(s.serve(Nanos(50), Nanos(10)), Nanos(60));
        assert!(s.is_idle(Nanos(60)));
        assert!(!s.is_idle(Nanos(59)));
    }

    #[test]
    fn busy_server_queues_fifo() {
        let mut s = TimelineServer::new();
        let a = s.serve(Nanos(0), Nanos(100));
        let b = s.serve(Nanos(10), Nanos(100));
        let c = s.serve(Nanos(20), Nanos(100));
        assert_eq!((a, b, c), (Nanos(100), Nanos(200), Nanos(300)));
        assert_eq!(s.backlog(Nanos(20)), Nanos(280));
    }

    #[test]
    fn utilization_accumulates() {
        let mut s = TimelineServer::new();
        s.serve(Nanos(0), Nanos(25));
        s.serve(Nanos(50), Nanos(25));
        assert_eq!(s.busy_time(), Nanos(50));
        assert!((s.utilization(Nanos(100)) - 0.5).abs() < 1e-9);
        assert_eq!(s.jobs_served(), 2);
    }

    #[test]
    fn pipe_transfer_time_matches_bandwidth() {
        // 100 Gbps == 12.5 GB/s; a 1500 B frame takes 120 ns.
        let mut p = BandwidthPipe::new(12.5);
        assert_eq!(p.transfer(Nanos(0), 1500), Nanos(120));
        // Second back-to-back frame completes at 240.
        assert_eq!(p.transfer(Nanos(0), 1500), Nanos(240));
    }

    #[test]
    fn pipe_saturation_throughput_is_line_rate() {
        // Offer far more than line rate for 1 ms and check goodput.
        let mut p = BandwidthPipe::new(12.5);
        let mut done = Nanos::ZERO;
        let mut bytes = 0u64;
        while done < Nanos::from_micros(1000) {
            done = p.transfer(Nanos::ZERO, 4096);
            bytes += 4096;
        }
        let gbps = bytes as f64 * 8.0 / done.as_nanos() as f64;
        assert!((gbps - 100.0).abs() < 1.0, "goodput {gbps} Gbps");
    }

    #[test]
    fn reset_clears_state() {
        let mut s = TimelineServer::new();
        s.serve(Nanos(0), Nanos(100));
        s.reset();
        assert!(s.is_idle(Nanos(0)));
        assert_eq!(s.jobs_served(), 0);
    }

    #[test]
    fn out_of_order_booking_does_not_block_earlier_arrivals() {
        let mut s = TimelineServer::new();
        // A stage books far in the future…
        assert_eq!(s.serve(Nanos(10_000), Nanos(10)), Nanos(10_010));
        // …an earlier-time arrival is absorbed instead of queueing
        // behind the future reservation.
        assert_eq!(s.serve(Nanos(100), Nanos(10)), Nanos(110));
        // Work is still accounted.
        assert_eq!(s.busy_time(), Nanos(20));
        // In-order arrivals continue to queue normally.
        assert_eq!(s.serve(Nanos(10_005), Nanos(10)), Nanos(10_020));
    }

    #[test]
    fn in_order_saturation_is_exact() {
        let mut s = TimelineServer::new();
        // In-order bookings: strict FIFO, capacity exact.
        let mut t = Nanos(0);
        for _ in 0..100 {
            t = s.serve(t, Nanos(100));
        }
        assert_eq!(t, Nanos(10_000));
        // An equal-time arrival queues at the tail (not out of order).
        assert_eq!(s.serve(Nanos(10_000), Nanos(100)), Nanos(10_100));
    }
}
