//! Pod-wide flight recorder: causal spans and instant events stamped in
//! simulated time, exportable as Chrome/Perfetto trace-event JSON.
//!
//! The recorder answers the question the aggregate counters cannot:
//! *where did a given forwarded I/O spend its nanoseconds?* Every stage
//! of the datapath — payload staging, protocol encode, channel
//! send/poll (including backpressure stalls), agent dispatch, device
//! doorbell, device execution, DMA, completion delivery — records a
//! span or instant here, correlated by operation id, and simultaneously
//! feeds a per-stage [`Histogram`] so reports can show p50/p99/max
//! latency attribution per stage and per device kind.
//!
//! Design constraints (see DESIGN.md §8):
//!
//! - **Observation only.** The recorder never advances any clock; it
//!   stores timestamps the simulation already computed. Runs with
//!   tracing on and off produce identical simulated behavior.
//! - **Bounded.** Events live in a chunked [`Arena`] capped at
//!   [`TraceConfig::capacity`]; once full, new events increment a drop
//!   counter instead of growing the buffer. Drops are themselves
//!   observable via [`TraceRecorder::dropped`]. Chunks are allocated
//!   lazily as the recording grows, so short runs never pay for the
//!   full capacity, and free-form annotations share one [`StrArena`]
//!   instead of costing a heap allocation per event.
//! - **Zero-cost when off.** The recorder is owned as an
//!   `Option<Box<_>>` by the fabric; every instrumentation site is a
//!   single `is-some` branch when disabled.
//!
//! The export format is the Chrome trace-event JSON understood by
//! <https://ui.perfetto.dev>: one track ("thread") per host CPU, per
//! DMA attach point, and per shared-memory channel.

use std::collections::BTreeMap;

use crate::arena::{Arena, StrArena, StrRef};
use crate::stats::{Histogram, Summary};
use crate::time::Nanos;

/// Device-kind tag attached to trace context: no device.
pub const KIND_NONE: u8 = 0;
/// Device-kind tag: NIC.
pub const KIND_NIC: u8 = 1;
/// Device-kind tag: SSD.
pub const KIND_SSD: u8 = 2;
/// Device-kind tag: accelerator.
pub const KIND_ACCEL: u8 = 3;

/// Human-readable name of a device-kind tag.
pub fn kind_name(kind: u8) -> &'static str {
    match kind {
        KIND_NIC => "nic",
        KIND_SSD => "ssd",
        KIND_ACCEL => "accel",
        _ => "-",
    }
}

/// The track an event is drawn on: one per host CPU, one per DMA
/// attach point, one per shared-memory channel (keyed by the ring's
/// base address, which is stable for the ring's lifetime).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// A host's CPU timeline.
    HostCpu(u16),
    /// A host's DMA attach point (all devices behind it).
    Dma(u16),
    /// One direction of a shared-memory channel, keyed by ring base.
    Channel(u64),
}

impl Track {
    fn label(&self) -> String {
        match self {
            Track::HostCpu(h) => format!("host{h} cpu"),
            Track::Dma(h) => format!("host{h} dma"),
            Track::Channel(base) => format!("chan@{base:#x}"),
        }
    }
}

/// One recorded event: a span (`dur` set) or an instant (`dur` empty).
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// The track the event belongs to.
    pub track: Track,
    /// Stage name, e.g. `"chan/send"`.
    pub name: &'static str,
    /// Correlating operation id (0 = not tied to a client operation).
    pub op: u64,
    /// Device-kind tag in force when the event was recorded.
    pub kind: u8,
    /// Start time (spans) or occurrence time (instants).
    pub start: Nanos,
    /// Span duration; `None` marks an instant event.
    pub dur: Option<Nanos>,
    /// Free-form annotation (message kind, violation detail, …) as a
    /// reference into the recorder's string arena; resolve with
    /// [`TraceRecorder::note_of`].
    pub note: Option<StrRef>,
}

/// Recorder construction parameters.
///
/// `Default` honours the environment, mirroring the audit switches:
/// `CXL_TRACE=full` additionally records one span per fabric access,
/// and `CXL_TRACE_CAPACITY=<n>` overrides the event-ring capacity.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Maximum number of retained events; the buffer never grows past
    /// this, and overflow increments [`TraceRecorder::dropped`].
    pub capacity: usize,
    /// Also record a span for every individual fabric access (loads,
    /// stores, flushes, DMA) — verbose; off unless `CXL_TRACE=full`.
    pub fabric_ops: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        // simlint: allow(wall-clock) -- sanctioned config entry point: CXL_TRACE_CAPACITY sizes the recorder, never simulated behavior
        let capacity = std::env::var("CXL_TRACE_CAPACITY")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1 << 16);
        let fabric_ops = matches!(
            // simlint: allow(wall-clock) -- sanctioned config entry point: CXL_TRACE selects recording verbosity only
            std::env::var("CXL_TRACE").as_deref(),
            Ok("full") | Ok("FULL")
        );
        TraceConfig {
            capacity,
            fabric_ops,
        }
    }
}

impl TraceConfig {
    /// True when the environment asks for tracing at all
    /// (`CXL_TRACE=1|on|full`), mirroring `CXL_AUDIT`.
    pub fn env_enabled() -> bool {
        matches!(
            // simlint: allow(wall-clock) -- sanctioned config entry point: CXL_TRACE toggles the recorder only
            std::env::var("CXL_TRACE").as_deref(),
            Ok("1") | Ok("on") | Ok("ON") | Ok("full") | Ok("FULL")
        )
    }
}

/// The flight recorder.
///
/// Owned by the fabric (so every layer that already holds `&mut
/// Fabric` can record without signature churn) and driven through a
/// small API: a context stack carrying `(op id, device kind)` set by
/// the datapath entry points, and `span`/`instant` recording calls at
/// each stage that inherit that context.
pub struct TraceRecorder {
    config: TraceConfig,
    events: Arena<TraceEvent>,
    notes: StrArena,
    dropped: u64,
    /// `(op, kind)` context stack; the top attributes recorded events.
    ctx: Vec<(u64, u8)>,
    /// Per-(stage, device kind) latency attribution.
    stages: BTreeMap<(&'static str, u8), Histogram>,
    /// Audit violations already re-emitted as instants (watermark into
    /// the audit report's recorded-violation list).
    audit_seen: usize,
}

impl TraceRecorder {
    /// Creates a recorder; event chunks are arena-allocated on demand,
    /// so recording never moves already-stored events and an idle
    /// recorder costs nothing.
    pub fn new(config: TraceConfig) -> TraceRecorder {
        TraceRecorder {
            config,
            events: Arena::new(),
            notes: StrArena::new(),
            dropped: 0,
            ctx: Vec::new(),
            stages: BTreeMap::new(),
            audit_seen: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Pushes an operation context: subsequent events record under
    /// `(op, kind)` until the matching [`TraceRecorder::pop_ctx`].
    pub fn push_ctx(&mut self, op: u64, kind: u8) {
        self.ctx.push((op, kind));
    }

    /// Pops the top operation context (no-op when empty).
    pub fn pop_ctx(&mut self) {
        self.ctx.pop();
    }

    /// The current `(op, kind)` context, or `(0, KIND_NONE)`.
    pub fn ctx(&self) -> (u64, u8) {
        self.ctx.last().copied().unwrap_or((0, KIND_NONE))
    }

    fn push_event(&mut self, ev: TraceEvent) {
        if self.events.len() < self.config.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Records a span under the current context and feeds the stage's
    /// histogram. `end < start` is clamped to a zero-length span.
    pub fn span(&mut self, track: Track, name: &'static str, start: Nanos, end: Nanos) {
        let (op, kind) = self.ctx();
        self.span_for(track, name, op, kind, start, end);
    }

    /// Records a span with an explicit `(op, kind)` attribution.
    pub fn span_for(
        &mut self,
        track: Track,
        name: &'static str,
        op: u64,
        kind: u8,
        start: Nanos,
        end: Nanos,
    ) {
        let dur = end.saturating_sub(start);
        self.stages
            .entry((name, kind))
            .or_default()
            .record(dur.as_nanos());
        self.push_event(TraceEvent {
            track,
            name,
            op,
            kind,
            start,
            dur: Some(dur),
            note: None,
        });
    }

    /// Records an instant event under the current context.
    pub fn instant(&mut self, track: Track, name: &'static str, at: Nanos) {
        let (op, kind) = self.ctx();
        self.instant_for(track, name, op, kind, at, None);
    }

    /// Records an annotated instant under the current context. The
    /// note is copied into the recorder's string arena (no per-event
    /// heap allocation).
    pub fn instant_note(&mut self, track: Track, name: &'static str, at: Nanos, note: &str) {
        let (op, kind) = self.ctx();
        self.instant_for(track, name, op, kind, at, Some(note));
    }

    /// Records an instant with explicit attribution.
    pub fn instant_for(
        &mut self,
        track: Track,
        name: &'static str,
        op: u64,
        kind: u8,
        at: Nanos,
        note: Option<&str>,
    ) {
        // Intern only if the event will be retained, so a full ring
        // does not grow the note arena.
        let note = if self.events.len() < self.config.capacity {
            note.map(|n| self.notes.intern(n))
        } else {
            None
        };
        self.push_event(TraceEvent {
            track,
            name,
            op,
            kind,
            start: at,
            dur: None,
            note,
        });
    }

    /// Iterates recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Resolves an event's annotation against this recorder's string
    /// arena.
    pub fn note_of(&self, ev: &TraceEvent) -> Option<&str> {
        ev.note.map(|r| self.notes.resolve(r))
    }

    /// Events not retained because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// How many audit violations have already been re-emitted as
    /// instants (a watermark into the audit report's violation list,
    /// maintained by the fabric's audit hook).
    pub fn audit_watermark(&self) -> usize {
        self.audit_seen
    }

    /// Advances the audit-violation watermark.
    pub fn set_audit_watermark(&mut self, n: usize) {
        self.audit_seen = n;
    }

    /// Per-stage latency attribution: `(stage, device kind, summary)`,
    /// sorted by stage name then kind. Histograms are fed even when the
    /// event ring overflows, so attribution stays complete under drops.
    pub fn stage_summaries(&self) -> Vec<(&'static str, u8, Summary)> {
        self.stages
            .iter()
            .map(|(&(name, kind), h)| (name, kind, h.summary()))
            .collect()
    }

    /// The raw histogram for one `(stage, kind)`, if recorded.
    pub fn stage_histogram(&self, name: &str, kind: u8) -> Option<&Histogram> {
        self.stages
            .iter()
            .find(|(&(n, k), _)| n == name && k == kind)
            .map(|(_, h)| h)
    }

    /// Exports the recording as Chrome trace-event JSON, loadable in
    /// `ui.perfetto.dev` or `chrome://tracing`. Timestamps are emitted
    /// in microseconds (the format's unit) with nanosecond precision
    /// preserved as fractions.
    pub fn export_chrome_json(&self) -> String {
        self.export_chrome_json_with(&[])
    }

    /// Exports the recording with extra pre-rendered trace-event JSON
    /// objects merged in (e.g. the metrics plane's `"ph":"C"` counter
    /// tracks from [`crate::metrics::MetricsRecorder::counter_track_events`]),
    /// so counters render alongside spans in one Perfetto view.
    pub fn export_chrome_json_with(&self, extra: &[String]) -> String {
        // Deterministic track→tid assignment in first-use order.
        let mut tids: BTreeMap<Track, u64> = BTreeMap::new();
        for ev in &self.events {
            let next = tids.len() as u64;
            tids.entry(ev.track).or_insert(next);
        }
        let mut out = String::with_capacity(self.events.len() * 96 + 256);
        out.push_str("{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [");
        let mut first = true;
        let mut emit = |s: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push('\n');
            out.push_str(&s);
        };
        for (track, tid) in &tids {
            emit(
                format!(
                    "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":{}}}}}",
                    json_string(&track.label())
                ),
                &mut first,
            );
        }
        for ev in &self.events {
            let tid = tids[&ev.track];
            let ts = ev.start.as_nanos() as f64 / 1000.0;
            let mut args = format!("\"op\":{},\"kind\":\"{}\"", ev.op, kind_name(ev.kind));
            if let Some(note) = self.note_of(ev) {
                args.push_str(&format!(",\"note\":{}", json_string(note)));
            }
            let body = match ev.dur {
                Some(d) => {
                    let dur = d.as_nanos() as f64 / 1000.0;
                    format!(
                        "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"name\":{},\
                         \"ts\":{ts},\"dur\":{dur},\"args\":{{{args}}}}}",
                        json_string(ev.name)
                    )
                }
                None => format!(
                    "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"name\":{},\
                     \"ts\":{ts},\"s\":\"t\",\"args\":{{{args}}}}}",
                    json_string(ev.name)
                ),
            };
            emit(body, &mut first);
        }
        for e in extra {
            emit(e.clone(), &mut first);
        }
        if self.dropped > 0 {
            emit(
                format!(
                    "{{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"name\":\"trace/dropped\",\
                     \"ts\":0,\"s\":\"g\",\"args\":{{\"count\":{}}}}}",
                    self.dropped
                ),
                &mut first,
            );
        }
        out.push_str("\n]\n}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(capacity: usize) -> TraceConfig {
        TraceConfig {
            capacity,
            fabric_ops: false,
        }
    }

    #[test]
    fn spans_inherit_context() {
        let mut tr = TraceRecorder::new(cfg(16));
        tr.push_ctx(42, KIND_SSD);
        tr.span(Track::HostCpu(1), "chan/send", Nanos(100), Nanos(250));
        tr.pop_ctx();
        tr.span(Track::HostCpu(1), "chan/send", Nanos(300), Nanos(310));
        let evs: Vec<&TraceEvent> = tr.events().collect();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].op, 42);
        assert_eq!(evs[0].kind, KIND_SSD);
        assert_eq!(evs[0].dur, Some(Nanos(150)));
        assert_eq!(evs[1].op, 0);
        assert_eq!(evs[1].kind, KIND_NONE);
    }

    #[test]
    fn capacity_bounds_events_and_counts_drops() {
        let mut tr = TraceRecorder::new(cfg(1));
        for i in 0..5u64 {
            tr.span_for(
                Track::Dma(0),
                "dma/read",
                i,
                KIND_NIC,
                Nanos(i * 10),
                Nanos(i * 10 + 5),
            );
        }
        assert_eq!(tr.event_count(), 1);
        assert_eq!(tr.dropped(), 4);
        // Attribution survives the drops.
        let sums = tr.stage_summaries();
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].2.count, 5);
    }

    #[test]
    fn stage_summaries_key_by_stage_and_kind() {
        let mut tr = TraceRecorder::new(cfg(64));
        tr.span_for(Track::Dma(0), "dma/read", 1, KIND_NIC, Nanos(0), Nanos(10));
        tr.span_for(Track::Dma(0), "dma/read", 2, KIND_SSD, Nanos(0), Nanos(30));
        let sums = tr.stage_summaries();
        assert_eq!(sums.len(), 2);
        assert!(sums
            .iter()
            .any(|&(n, k, s)| n == "dma/read" && k == KIND_NIC && s.max == 10));
        assert!(sums
            .iter()
            .any(|&(n, k, s)| n == "dma/read" && k == KIND_SSD && s.max == 30));
    }

    #[test]
    fn export_is_valid_shape() {
        let mut tr = TraceRecorder::new(cfg(8));
        tr.push_ctx(7, KIND_NIC);
        tr.span(
            Track::HostCpu(0),
            "op/vnic_send",
            Nanos(1_500),
            Nanos(2_500),
        );
        tr.instant_note(
            Track::Channel(0xABC0),
            "chan/blocked",
            Nanos(2_000),
            "ring \"full\"",
        );
        tr.pop_ctx();
        let json = tr.export_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"op/vnic_send\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("ring \\\"full\\\""));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
    }

    #[test]
    fn export_merges_extra_events() {
        let mut tr = TraceRecorder::new(cfg(8));
        tr.span_for(Track::HostCpu(0), "x", 1, KIND_NONE, Nanos(0), Nanos(5));
        let extra = vec![
            "{\"ph\":\"C\",\"pid\":0,\"name\":\"pool/free_bytes\",\"ts\":0,\
             \"args\":{\"value\":1}}"
                .to_string(),
        ];
        let json = tr.export_chrome_json_with(&extra);
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("pool/free_bytes"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn reversed_span_clamps_to_zero() {
        let mut tr = TraceRecorder::new(cfg(4));
        tr.span_for(Track::HostCpu(0), "x", 1, KIND_NONE, Nanos(100), Nanos(50));
        assert_eq!(tr.events().next().expect("one event").dur, Some(Nanos(0)));
    }

    #[test]
    fn notes_resolve_through_arena() {
        let mut tr = TraceRecorder::new(cfg(8));
        tr.instant_note(Track::HostCpu(0), "a", Nanos(1), "first");
        tr.instant(Track::HostCpu(0), "b", Nanos(2));
        tr.instant_note(Track::HostCpu(0), "c", Nanos(3), "third");
        let notes: Vec<Option<&str>> = {
            let evs: Vec<&TraceEvent> = tr.events().collect();
            evs.iter().map(|e| tr.note_of(e)).collect()
        };
        assert_eq!(notes, vec![Some("first"), None, Some("third")]);
    }

    #[test]
    fn full_ring_does_not_grow_note_arena() {
        let mut tr = TraceRecorder::new(cfg(1));
        tr.instant_note(Track::HostCpu(0), "a", Nanos(1), "kept");
        tr.instant_note(Track::HostCpu(0), "b", Nanos(2), "dropped-note");
        assert_eq!(tr.event_count(), 1);
        assert_eq!(tr.dropped(), 1);
        let ev = tr.events().next().expect("one event");
        assert_eq!(tr.note_of(ev), Some("kept"));
    }
}
