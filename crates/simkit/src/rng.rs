//! Deterministic pseudo-random number generation and distributions.
//!
//! The simulator implements its own PRNG (SplitMix64 for seeding,
//! xoshiro256++ for the stream) so that simulation results are stable
//! across toolchain and dependency upgrades. The generators here are for
//! *simulation*, not cryptography.

/// SplitMix64: a tiny, statistically solid generator used to expand a
/// single `u64` seed into the xoshiro256++ state.
///
/// # Examples
///
/// ```
/// use simkit::rng::SplitMix64;
/// let mut sm = SplitMix64::new(42);
/// let a = sm.next_u64();
/// let b = sm.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an arbitrary seed (zero is fine).
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++: the workhorse generator for all stochastic simulation
/// inputs (arrival processes, service jitter, workload mixes).
///
/// Seeded via [`SplitMix64`] per the reference implementation, so any
/// `u64` seed — including 0 — yields a well-mixed state.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Rng {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Splits off an independent child generator (for giving each
    /// simulated component its own stream).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` using Lemire's multiply-shift method
    /// (unbiased enough for simulation; no rejection loop needed at these
    /// ranges).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range must be nonempty");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive, got {mean}");
        // Use 1-u so ln never sees exactly 0.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Standard normal via Box–Muller.
    pub fn std_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.std_normal()
    }

    /// Log-normal parameterized by the *underlying* normal's `mu` and
    /// `sigma` (i.e. `exp(N(mu, sigma))`).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto (heavy tail) with scale `x_min` and shape `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `x_min <= 0` or `alpha <= 0`.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min > 0.0 && alpha > 0.0, "invalid pareto parameters");
        x_min / (1.0 - self.f64()).powf(1.0 / alpha)
    }

    /// Picks an index from a slice of nonnegative weights proportional to
    /// weight.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weights must be nonempty with positive sum"
        );
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// A Zipf(α) sampler over `{0, .., n-1}` using precomputed cumulative
/// weights — O(log n) per sample, suitable for skewed-access workloads.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` items with skew `alpha` (0 = uniform,
    /// larger = more skewed; 0.99 is the YCSB default).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha < 0`.
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(alpha >= 0.0, "alpha must be nonnegative");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(alpha);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Samples an item index; index 0 is the hottest.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative weights are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = Rng::new(4);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = r.below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn exp_mean_converges() {
        let mut r = Rng::new(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exp(250.0)).sum::<f64>() / n as f64;
        assert!((mean - 250.0).abs() < 5.0, "sample mean {mean} too far");
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = Rng::new(6);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05);
        assert!((var - 4.0).abs() < 0.15);
    }

    #[test]
    fn weighted_respects_weights() {
        let mut r = Rng::new(8);
        let weights = [1.0, 3.0];
        let n = 100_000;
        let ones = (0..n).filter(|_| r.weighted(&weights) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(100, 0.99);
        let mut r = Rng::new(9);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[50] * 10, "head should dominate");
        assert!(counts.iter().sum::<u32>() == 100_000);
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut r = Rng::new(10);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "count {c} not uniform");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move items");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = Rng::new(12);
        let mut child = a.fork();
        let overlap = (0..100)
            .filter(|_| a.next_u64() == child.next_u64())
            .count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut r = Rng::new(13);
        for _ in 0..10_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }
}
