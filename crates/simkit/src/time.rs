//! Simulated time: a nanosecond-resolution monotonic clock value.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, or a duration, in nanoseconds.
///
/// The simulation uses a single scalar type for both instants and
/// durations: every simulation starts at `Nanos(0)` and arithmetic is
/// saturating-free (overflow panics in debug builds), which is fine
/// because `u64` nanoseconds cover ~584 years of simulated time.
///
/// # Examples
///
/// ```
/// use simkit::Nanos;
///
/// let t = Nanos::from_micros(1) + Nanos(500);
/// assert_eq!(t, Nanos(1_500));
/// assert_eq!(t.as_micros_f64(), 1.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Zero time; the epoch of every simulation.
    pub const ZERO: Nanos = Nanos(0);
    /// The maximum representable time; used as "run to completion".
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a time value from whole microseconds.
    pub const fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// Creates a time value from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// Creates a time value from whole seconds.
    pub const fn from_secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a time value from fractional seconds, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Nanos {
        assert!(s.is_finite() && s >= 0.0, "invalid seconds value: {s}");
        Nanos((s * 1e9).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the value in microseconds as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the value in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; returns [`Nanos::ZERO`] instead of
    /// underflowing.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_add(rhs.0).map(Nanos)
    }

    /// Returns the larger of two times.
    pub fn max(self, rhs: Nanos) -> Nanos {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// Returns the smaller of two times.
    pub fn min(self, rhs: Nanos) -> Nanos {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Computes the time to transfer `bytes` at `gbytes_per_sec` GB/s,
/// rounding up to the next nanosecond so zero-cost transfers are
/// impossible for nonzero sizes.
///
/// # Panics
///
/// Panics if `gbytes_per_sec` is not strictly positive.
pub fn transfer_time(bytes: u64, gbytes_per_sec: f64) -> Nanos {
    assert!(
        gbytes_per_sec > 0.0,
        "bandwidth must be positive, got {gbytes_per_sec}"
    );
    if bytes == 0 {
        return Nanos::ZERO;
    }
    // 1 GB/s == 1 byte/ns, so ns = bytes / GBps.
    Nanos((bytes as f64 / gbytes_per_sec).ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Nanos::from_micros(3), Nanos(3_000));
        assert_eq!(Nanos::from_millis(3), Nanos(3_000_000));
        assert_eq!(Nanos::from_secs(3), Nanos(3_000_000_000));
        assert_eq!(Nanos::from_secs_f64(1.5), Nanos(1_500_000_000));
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Nanos(100);
        let b = Nanos(30);
        assert_eq!(a + b, Nanos(130));
        assert_eq!(a - b, Nanos(70));
        assert_eq!(a * 3, Nanos(300));
        assert_eq!(a / 4, Nanos(25));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn sum_of_iterator() {
        let total: Nanos = [Nanos(1), Nanos(2), Nanos(3)].into_iter().sum();
        assert_eq!(total, Nanos(6));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Nanos(999)), "999ns");
        assert_eq!(format!("{}", Nanos(1_500)), "1.500us");
        assert_eq!(format!("{}", Nanos(2_500_000)), "2.500ms");
        assert_eq!(format!("{}", Nanos(1_200_000_000)), "1.200s");
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 64 bytes at 30 GB/s is 2.13 ns -> 3 ns.
        assert_eq!(transfer_time(64, 30.0), Nanos(3));
        assert_eq!(transfer_time(0, 30.0), Nanos::ZERO);
        // 1 GiB at 1 GB/s is just over one second.
        assert_eq!(transfer_time(1 << 30, 1.0), Nanos(1 << 30));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn transfer_time_rejects_zero_bandwidth() {
        let _ = transfer_time(1, 0.0);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(Nanos::MAX.checked_add(Nanos(1)), None);
        assert_eq!(Nanos(1).checked_add(Nanos(2)), Some(Nanos(3)));
    }
}
