//! Plain-text and CSV table formatting for experiment output.
//!
//! Every figure/table reproduction in `crates/bench` prints its result
//! series through this module so output is uniform and diffable.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// # Examples
///
/// ```
/// use simkit::table::Table;
/// let mut t = Table::new(&["payload", "p50_us", "p99_us"]);
/// t.row(&["64", "8.1", "11.2"]);
/// t.row(&["4096", "9.0", "13.5"]);
/// let text = t.render();
/// assert!(text.contains("payload"));
/// assert!(text.contains("4096"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; the cell count must match the header count.
    ///
    /// # Panics
    ///
    /// Panics if `cells.len()` differs from the number of headers.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends one row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a column-aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(widths.iter()).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        write_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }

    /// Renders as CSV (no quoting; cells in this workspace never contain
    /// commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with a sensible number of significant digits for
/// table cells.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["a", "long_header"]);
        t.row(&["12345", "x"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn csv_roundtrip_structure() {
        let mut t = Table::new(&["x", "y"]);
        t.row(&["1", "2"]);
        t.row(&["3", "4"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n3,4\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn fmt_f64_scales_precision() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(0.12345), "0.1235");
        assert_eq!(fmt_f64(1.23456), "1.23");
        assert_eq!(fmt_f64(123.456), "123.5");
    }
}
