//! The event queue and run loop, plus the wall-clock DES
//! self-profiler ([`Profiler`]).

use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::collections::BinaryHeap;
use std::time::Duration;

use crate::time::Nanos;

/// A simulation world: owns all mutable state and dispatches events.
///
/// Implementors define a domain-specific `Event` enum; the run loop pops
/// events in `(time, insertion order)` order and hands them to
/// [`World::handle`], which may schedule further events.
pub trait World {
    /// The domain-specific event type dispatched by this world.
    type Event;

    /// Handles one event at simulated time `now`.
    fn handle(&mut self, now: Nanos, ev: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// A deterministic future-event queue.
///
/// Events with equal timestamps are delivered in the order they were
/// scheduled (FIFO tie-break), which keeps simulations reproducible.
pub struct Scheduler<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: Nanos,
}

struct Entry<E> {
    at: Nanos,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at time zero.
    pub fn new() -> Scheduler<E> {
        Scheduler {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Nanos::ZERO,
        }
    }

    /// Schedules `ev` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time:
    /// scheduling into the past would violate causality.
    pub fn schedule(&mut self, at: Nanos, ev: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at:?} < now {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, ev }));
    }

    /// Schedules `ev` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Nanos, ev: E) {
        let at = self.now + delay;
        self.schedule(at, ev);
    }

    /// The current simulation time (the timestamp of the event being
    /// dispatched, or of the last dispatched event).
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// True if no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        let Reverse(entry) = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue went backwards");
        self.now = entry.at;
        Some((entry.at, entry.ev))
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Discards all pending events without dispatching them.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler::new()
    }
}

/// Runs the world until the event queue drains or the next event would
/// fire after `until`. Returns the final simulation time (the timestamp
/// of the last dispatched event).
///
/// Events scheduled exactly at `until` are still dispatched.
pub fn run<W: World>(world: &mut W, sched: &mut Scheduler<W::Event>, until: Nanos) -> Nanos {
    let mut last = sched.now();
    while let Some(next) = sched.peek_time() {
        if next > until {
            break;
        }
        let (now, ev) = sched.pop().expect("peeked event must pop");
        world.handle(now, ev, sched);
        last = now;
    }
    last
}

/// Runs the world until `predicate(world)` becomes true, the queue
/// drains, or `until` is exceeded. Returns the final simulation time.
///
/// The predicate is checked after every dispatched event.
pub fn run_until<W: World>(
    world: &mut W,
    sched: &mut Scheduler<W::Event>,
    until: Nanos,
    mut predicate: impl FnMut(&W) -> bool,
) -> Nanos {
    let mut last = sched.now();
    while let Some(next) = sched.peek_time() {
        if next > until {
            break;
        }
        let (now, ev) = sched.pop().expect("peeked event must pop");
        world.handle(now, ev, sched);
        last = now;
        if predicate(world) {
            break;
        }
    }
    last
}

/// Wall-clock DES self-profiler: how fast is the simulator itself?
///
/// Per subsystem (a caller-chosen phase or component name) it records
/// events dispatched, simulated nanoseconds covered, and wall-clock
/// time burned — sampled **outside** simulated time, so determinism is
/// untouched: a profiled run and an unprofiled run produce bit-identical
/// simulated results. The derived rates (events/wall-s,
/// simulated-ns/wall-s) are the baseline and regression gate for the
/// ROADMAP's sharded-DES work; `bench workload` lands them in
/// `BENCH_workload.json` as `sim_rate`.
///
/// This type is the sanctioned home of `Instant::now` in simulation
/// crates — wall clock *is* the measurement target here. simlint's
/// wall-clock allowlist self-check pins the number of such sites.
pub struct Profiler {
    rows: BTreeMap<&'static str, ProfRow>,
    started: std::time::Instant,
}

/// Accumulated totals for one profiled subsystem.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProfRow {
    /// Wall-clock time spent inside [`Profiler::measure`] calls.
    pub wall: Duration,
    /// Events (or operations) attributed via [`Profiler::add_events`].
    pub events: u64,
    /// Simulated time covered, attributed via [`Profiler::add_sim`].
    pub sim: Nanos,
}

/// One rendered row of a [`ProfilerReport`].
#[derive(Clone, Debug)]
pub struct ProfiledSubsystem {
    /// Subsystem name.
    pub name: &'static str,
    /// Events dispatched.
    pub events: u64,
    /// Wall-clock nanoseconds burned.
    pub wall_ns: u64,
    /// Simulated nanoseconds covered.
    pub sim_ns: u64,
    /// Events per wall-clock second.
    pub events_per_wall_s: f64,
    /// Simulated nanoseconds per wall-clock second (the DES "speed of
    /// light": 1e9 means real time).
    pub sim_ns_per_wall_s: f64,
}

/// Totals + per-subsystem rows from a [`Profiler`], sorted by name.
#[derive(Clone, Debug)]
pub struct ProfilerReport {
    /// Per-subsystem rows, sorted by subsystem name.
    pub rows: Vec<ProfiledSubsystem>,
    /// Total wall-clock nanoseconds since [`Profiler::start`].
    pub wall_ns: u64,
    /// Total events across subsystems.
    pub events: u64,
    /// Total simulated nanoseconds across subsystems.
    pub sim_ns: u64,
    /// Total events per wall-clock second.
    pub events_per_wall_s: f64,
    /// Total simulated nanoseconds per wall-clock second.
    pub sim_ns_per_wall_s: f64,
}

impl Profiler {
    /// Starts profiling; the wall clock runs from here.
    pub fn start() -> Profiler {
        Profiler {
            rows: BTreeMap::new(),
            // simlint: allow(wall-clock) -- DES self-profiler: wall clock is the measurement target, sampled outside simulated time
            started: std::time::Instant::now(),
        }
    }

    /// Runs `f`, charging its wall-clock time to `subsystem`.
    pub fn measure<R>(&mut self, subsystem: &'static str, f: impl FnOnce() -> R) -> R {
        // simlint: allow(wall-clock) -- DES self-profiler: wall clock is the measurement target, sampled outside simulated time
        let t0 = std::time::Instant::now();
        let r = f();
        let elapsed = t0.elapsed();
        self.rows.entry(subsystem).or_default().wall += elapsed;
        r
    }

    /// Attributes `n` dispatched events (or completed operations) to
    /// `subsystem`.
    pub fn add_events(&mut self, subsystem: &'static str, n: u64) {
        self.rows.entry(subsystem).or_default().events += n;
    }

    /// Attributes `d` of simulated-time coverage to `subsystem`.
    pub fn add_sim(&mut self, subsystem: &'static str, d: Nanos) {
        self.rows.entry(subsystem).or_default().sim += d;
    }

    /// Raw accumulated rows, sorted by subsystem name.
    pub fn rows(&self) -> impl Iterator<Item = (&'static str, &ProfRow)> {
        self.rows.iter().map(|(&k, v)| (k, v))
    }

    /// Renders the report: per-subsystem rates plus totals. Zero wall
    /// time clamps to 1 ns so rates stay finite (and strictly positive
    /// whenever any simulated time was covered).
    pub fn report(&self) -> ProfilerReport {
        let per_s = |n: f64, wall_ns: u64| n * 1e9 / wall_ns.max(1) as f64;
        let rows: Vec<ProfiledSubsystem> = self
            .rows
            .iter()
            .map(|(&name, r)| {
                let wall_ns = r.wall.as_nanos().min(u128::from(u64::MAX)) as u64;
                ProfiledSubsystem {
                    name,
                    events: r.events,
                    wall_ns,
                    sim_ns: r.sim.as_nanos(),
                    events_per_wall_s: per_s(r.events as f64, wall_ns),
                    sim_ns_per_wall_s: per_s(r.sim.as_nanos() as f64, wall_ns),
                }
            })
            .collect();
        let wall_ns = self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let events: u64 = rows.iter().map(|r| r.events).sum();
        let sim_ns: u64 = rows.iter().map(|r| r.sim_ns).sum();
        ProfilerReport {
            rows,
            wall_ns,
            events,
            sim_ns,
            events_per_wall_s: per_s(events as f64, wall_ns),
            sim_ns_per_wall_s: per_s(sim_ns as f64, wall_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<u32>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, _now: Nanos, ev: u32, _s: &mut Scheduler<u32>) {
            self.seen.push(ev);
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut w = Recorder { seen: vec![] };
        let mut s = Scheduler::new();
        s.schedule(Nanos(30), 3);
        s.schedule(Nanos(10), 1);
        s.schedule(Nanos(20), 2);
        run(&mut w, &mut s, Nanos::MAX);
        assert_eq!(w.seen, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_fire_fifo() {
        let mut w = Recorder { seen: vec![] };
        let mut s = Scheduler::new();
        for i in 0..100 {
            s.schedule(Nanos(5), i);
        }
        run(&mut w, &mut s, Nanos::MAX);
        assert_eq!(w.seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn run_respects_horizon() {
        let mut w = Recorder { seen: vec![] };
        let mut s = Scheduler::new();
        s.schedule(Nanos(10), 1);
        s.schedule(Nanos(20), 2);
        s.schedule(Nanos(21), 3);
        let end = run(&mut w, &mut s, Nanos(20));
        assert_eq!(w.seen, vec![1, 2]);
        assert_eq!(end, Nanos(20));
        assert_eq!(s.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        struct Bad;
        impl World for Bad {
            type Event = ();
            fn handle(&mut self, now: Nanos, _: (), s: &mut Scheduler<()>) {
                s.schedule(now - Nanos(1), ());
            }
        }
        let mut s = Scheduler::new();
        s.schedule(Nanos(10), ());
        run(&mut Bad, &mut s, Nanos::MAX);
    }

    #[test]
    fn run_until_predicate_stops_early() {
        let mut w = Recorder { seen: vec![] };
        let mut s = Scheduler::new();
        for i in 0..10 {
            s.schedule(Nanos(i as u64 * 10), i);
        }
        run_until(&mut w, &mut s, Nanos::MAX, |w| w.seen.len() == 4);
        assert_eq!(w.seen, vec![0, 1, 2, 3]);
        assert_eq!(s.pending(), 6);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        struct Chain {
            times: Vec<Nanos>,
        }
        impl World for Chain {
            type Event = ();
            fn handle(&mut self, now: Nanos, _: (), s: &mut Scheduler<()>) {
                self.times.push(now);
                if self.times.len() < 3 {
                    s.schedule_in(Nanos(7), ());
                }
            }
        }
        let mut w = Chain { times: vec![] };
        let mut s = Scheduler::new();
        s.schedule(Nanos(1), ());
        run(&mut w, &mut s, Nanos::MAX);
        assert_eq!(w.times, vec![Nanos(1), Nanos(8), Nanos(15)]);
    }

    #[test]
    fn profiler_accumulates_and_reports() {
        let mut p = Profiler::start();
        let v = p.measure("pump", || 40 + 2);
        assert_eq!(v, 42);
        p.add_events("pump", 10);
        p.add_sim("pump", Nanos::from_millis(5));
        p.add_events("search", 1);
        let rep = p.report();
        assert_eq!(rep.rows.len(), 2);
        // BTreeMap order: "pump" < "search".
        assert_eq!(rep.rows[0].name, "pump");
        assert_eq!(rep.rows[0].events, 10);
        assert_eq!(rep.rows[0].sim_ns, 5_000_000);
        assert_eq!(rep.events, 11);
        assert_eq!(rep.sim_ns, 5_000_000);
        assert!(rep.wall_ns > 0);
        assert!(rep.sim_ns_per_wall_s > 0.0);
        assert!(rep.events_per_wall_s > 0.0);
    }

    #[test]
    fn clear_discards_pending() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule(Nanos(1), 1);
        s.schedule(Nanos(2), 2);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.pop().map(|(_, e)| e), None);
    }
}
