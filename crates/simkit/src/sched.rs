//! The event queue and run loop, plus the wall-clock DES
//! self-profiler ([`Profiler`]).
//!
//! Two interchangeable queue implementations back the [`Scheduler`]
//! (see [`EventQueue`]): the default [`CalendarQueue`] — a bucketed
//! timing wheel with amortized O(1) insert/extract — and the
//! [`ReferenceHeap`] binary heap it is differentially tested against.
//! Both realize the exact same `(time, insertion seq)` total order, so
//! swapping one for the other never changes simulated results; see
//! `docs/PERFORMANCE.md` for the design notes.

use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::collections::BinaryHeap;
use std::time::Duration;

use crate::time::Nanos;

/// A simulation world: owns all mutable state and dispatches events.
///
/// Implementors define a domain-specific `Event` enum; the run loop pops
/// events in `(time, insertion order)` order and hands them to
/// [`World::handle`], which may schedule further events.
pub trait World {
    /// The domain-specific event type dispatched by this world.
    type Event;

    /// Handles one event at simulated time `now`.
    fn handle(&mut self, now: Nanos, ev: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// One queued event: fire time, insertion sequence, payload. The pair
/// `(at, seq)` is the queue's total order; `seq` is unique, so the
/// order has no ties.
struct Entry<E> {
    at: Nanos,
    seq: u64,
    ev: E,
}

impl<E> Entry<E> {
    fn key(&self) -> (Nanos, u64) {
        (self.at, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

mod queue_core {
    use super::Nanos;

    /// The pluggable core of a [`super::Scheduler`]'s event queue
    /// (sealed: implementations live in `sched` only).
    ///
    /// Implementations must realize the exact total order
    /// `(time, seq)` — `pop_min` always returns the pending event with
    /// the smallest `(at, seq)` pair. Because `seq` values are unique,
    /// the order is total and two conforming implementations dispatch
    /// any workload in bit-identical order; the test suite checks the
    /// calendar queue against the reference heap on randomized
    /// schedules.
    pub trait EventQueueCore<E> {
        /// Inserts an event firing at `at` with insertion sequence
        /// `seq`.
        fn push(&mut self, at: Nanos, seq: u64, ev: E);
        /// Removes and returns the minimum-`(at, seq)` event.
        fn pop_min(&mut self) -> Option<(Nanos, u64, E)>;
        /// The `(at, seq)` key of the minimum pending event, if any.
        fn peek_min(&mut self) -> Option<(Nanos, u64)>;
        /// Number of pending events.
        fn len(&self) -> usize;
        /// Discards all pending events.
        fn clear(&mut self);
    }
}

use queue_core::EventQueueCore;

/// The queue contract both [`Scheduler`] backends satisfy: a
/// deterministic `(time, seq)`-ordered event queue. Sealed — the two
/// implementations are [`CalendarQueue`] (the default) and
/// [`ReferenceHeap`] (the differential-testing baseline), selected via
/// [`Scheduler::new`] / [`Scheduler::with_reference_heap`].
pub trait EventQueue<E>: EventQueueCore<E> {}

/// The original `BinaryHeap` event queue, kept as the reference
/// implementation for differential testing ([`Scheduler::with_reference_heap`]).
///
/// O(log n) push/pop, trivially correct ordering via the entry’s `Ord`.
pub struct ReferenceHeap<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
}

impl<E> Default for ReferenceHeap<E> {
    fn default() -> Self {
        ReferenceHeap {
            heap: BinaryHeap::new(),
        }
    }
}

impl<E> EventQueueCore<E> for ReferenceHeap<E> {
    fn push(&mut self, at: Nanos, seq: u64, ev: E) {
        self.heap.push(Reverse(Entry { at, seq, ev }));
    }

    fn pop_min(&mut self) -> Option<(Nanos, u64, E)> {
        let Reverse(e) = self.heap.pop()?;
        Some((e.at, e.seq, e.ev))
    }

    fn peek_min(&mut self) -> Option<(Nanos, u64)> {
        self.heap.peek().map(|Reverse(e)| e.key())
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> EventQueue<E> for ReferenceHeap<E> {}

/// Smallest bucket count a [`CalendarQueue`] shrinks back to.
const CAL_MIN_BUCKETS: usize = 16;
/// Initial bucket width before the first content-driven resize (ns).
const CAL_INITIAL_WIDTH: u64 = 1024;

/// A calendar queue (Brown-style bucketed timing wheel): the default
/// event queue, with amortized O(1) insert and extract-min.
///
/// Time is divided into `width`-ns *days*, mapped round-robin onto
/// `buckets.len()` unsorted buckets; one lap of the calendar is a
/// *year*. Extract-min scans at most one year of buckets starting at
/// the current cursor day and picks the smallest `(time, seq)` entry
/// of the first populated in-window bucket; if a whole year is empty
/// (entries far in the future), it falls back to a global minimum scan
/// and jumps the cursor there. The queue resizes (doubling/halving the
/// bucket count, re-deriving the width from the live entries' time
/// span) when the load factor leaves `[0.5, 2]`, keeping buckets O(1)
/// in the steady state.
///
/// Determinism: bucket placement and scan order depend only on queue
/// content, and the in-bucket minimum is taken over the total
/// `(time, seq)` key, so pops are bit-identical to the
/// [`ReferenceHeap`]'s.
pub struct CalendarQueue<E> {
    buckets: Vec<Vec<Entry<E>>>,
    /// Bucket width in nanoseconds (a "day").
    width: u64,
    count: usize,
    /// Lower bound on every pending entry's time: the last popped
    /// time (or zero). The extract scan starts at this day.
    cursor: Nanos,
    /// Cached location of the current minimum entry:
    /// `(bucket, slot, key)`. Valid until the next structural change;
    /// pushes keep it fresh (appends never move existing slots).
    min_pos: Option<(usize, usize, (Nanos, u64))>,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        CalendarQueue {
            buckets: (0..CAL_MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: CAL_INITIAL_WIDTH,
            count: 0,
            cursor: Nanos::ZERO,
            min_pos: None,
        }
    }
}

impl<E> CalendarQueue<E> {
    fn bucket_of(&self, at: Nanos) -> usize {
        // Bucket count is a power of two, so the modulo is a mask.
        ((at.0 / self.width) as usize) & (self.buckets.len() - 1)
    }

    /// Locates the minimum-`(time, seq)` entry, caching its position.
    fn find_min(&mut self) -> Option<(usize, usize, (Nanos, u64))> {
        if self.min_pos.is_some() {
            return self.min_pos;
        }
        if self.count == 0 {
            return None;
        }
        let n = self.buckets.len();
        // One calendar year starting at the cursor's day: bucket k of
        // the lap covers times [day_floor + k*width, day_floor +
        // (k+1)*width). The first populated in-window bucket holds the
        // global minimum (later buckets' windows start later; earlier
        // buckets recur a whole year on).
        let day_floor = self.cursor.0 - (self.cursor.0 % self.width);
        let start = self.bucket_of(Nanos(day_floor));
        for k in 0..n {
            let idx = (start + k) & (n - 1);
            let window_end = day_floor.saturating_add((k as u64 + 1).saturating_mul(self.width));
            let best = self.buckets[idx]
                .iter()
                .enumerate()
                .filter(|(_, e)| e.at.0 < window_end)
                .min_by_key(|(_, e)| e.key());
            if let Some((slot, e)) = best {
                self.min_pos = Some((idx, slot, e.key()));
                return self.min_pos;
            }
        }
        // Sparse tail: every entry lies a year or more past the
        // cursor. Global scan, then jump the cursor to the minimum.
        let mut best: Option<(usize, usize, (Nanos, u64))> = None;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            for (slot, e) in bucket.iter().enumerate() {
                if best.is_none_or(|(_, _, key)| e.key() < key) {
                    best = Some((idx, slot, e.key()));
                }
            }
        }
        self.min_pos = best;
        self.min_pos
    }

    /// Doubles/halves the calendar when the load factor leaves
    /// `[0.5, 2]`, re-deriving the bucket width from the live entries'
    /// span so one day holds O(1) events in the steady state.
    fn maybe_resize(&mut self) {
        let n = self.buckets.len();
        let new_n = if self.count > 2 * n {
            n * 2
        } else if self.count < n / 2 && n > CAL_MIN_BUCKETS {
            n / 2
        } else {
            return;
        };
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for b in &self.buckets {
            for e in b {
                lo = lo.min(e.at.0);
                hi = hi.max(e.at.0);
            }
        }
        // Average inter-event gap, clamped to a power of two so the
        // day index stays a shift+mask. A collapsed span (all events
        // in one instant) keeps the current width.
        if hi > lo {
            let gap = ((hi - lo) / self.count as u64).max(1);
            self.width = gap.next_power_of_two();
        }
        let old = std::mem::replace(&mut self.buckets, (0..new_n).map(|_| Vec::new()).collect());
        for e in old.into_iter().flatten() {
            let idx = self.bucket_of(e.at);
            self.buckets[idx].push(e);
        }
        self.min_pos = None;
    }
}

impl<E> EventQueueCore<E> for CalendarQueue<E> {
    fn push(&mut self, at: Nanos, seq: u64, ev: E) {
        // Keep the cursor a true lower bound even if a caller pushes
        // behind it (the Scheduler never does; this keeps the queue
        // correct as a standalone structure).
        if self.count == 0 || at < self.cursor {
            self.cursor = at;
            self.min_pos = None;
        }
        let idx = self.bucket_of(at);
        self.buckets[idx].push(Entry { at, seq, ev });
        self.count += 1;
        // Appends never move existing entries, so a cached minimum
        // stays valid unless the new entry beats it.
        match self.min_pos {
            Some((_, _, key)) if (at, seq) < key => {
                self.min_pos = Some((idx, self.buckets[idx].len() - 1, (at, seq)));
            }
            _ => {}
        }
        self.maybe_resize();
    }

    fn pop_min(&mut self) -> Option<(Nanos, u64, E)> {
        let (idx, slot, key) = self.find_min()?;
        let e = self.buckets[idx].swap_remove(slot);
        debug_assert_eq!(e.key(), key, "cached minimum went stale");
        self.count -= 1;
        self.cursor = e.at;
        self.min_pos = None;
        self.maybe_resize();
        Some((e.at, e.seq, e.ev))
    }

    fn peek_min(&mut self) -> Option<(Nanos, u64)> {
        self.find_min().map(|(_, _, key)| key)
    }

    fn len(&self) -> usize {
        self.count
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.count = 0;
        self.min_pos = None;
    }
}

impl<E> EventQueue<E> for CalendarQueue<E> {}

/// Which queue implementation backs a [`Scheduler`].
enum QueueImpl<E> {
    Calendar(CalendarQueue<E>),
    Heap(ReferenceHeap<E>),
}

impl<E> QueueImpl<E> {
    fn as_core(&mut self) -> &mut dyn EventQueueCore<E> {
        match self {
            QueueImpl::Calendar(q) => q,
            QueueImpl::Heap(q) => q,
        }
    }

    fn len(&self) -> usize {
        match self {
            QueueImpl::Calendar(q) => q.len(),
            QueueImpl::Heap(q) => q.len(),
        }
    }
}

/// A deterministic future-event queue.
///
/// Events with equal timestamps are delivered in the order they were
/// scheduled (FIFO tie-break), which keeps simulations reproducible.
/// Backed by a [`CalendarQueue`] by default;
/// [`Scheduler::with_reference_heap`] selects the [`ReferenceHeap`]
/// instead — both produce bit-identical dispatch order.
pub struct Scheduler<E> {
    queue: QueueImpl<E>,
    seq: u64,
    now: Nanos,
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at time zero, backed by the default
    /// [`CalendarQueue`].
    pub fn new() -> Scheduler<E> {
        Scheduler {
            queue: QueueImpl::Calendar(CalendarQueue::default()),
            seq: 0,
            now: Nanos::ZERO,
        }
    }

    /// Creates an empty scheduler backed by the [`ReferenceHeap`] —
    /// the original binary-heap queue, kept for differential testing
    /// against the calendar queue.
    pub fn with_reference_heap() -> Scheduler<E> {
        Scheduler {
            queue: QueueImpl::Heap(ReferenceHeap::default()),
            seq: 0,
            now: Nanos::ZERO,
        }
    }

    /// Schedules `ev` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time:
    /// scheduling into the past would violate causality.
    pub fn schedule(&mut self, at: Nanos, ev: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at:?} < now {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.as_core().push(at, seq, ev);
    }

    /// Schedules `ev` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Nanos, ev: E) {
        let at = self.now + delay;
        self.schedule(at, ev);
    }

    /// The current simulation time (the timestamp of the event being
    /// dispatched, or of the last dispatched event).
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// True if no events remain.
    pub fn is_empty(&self) -> bool {
        self.queue.len() == 0
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        let (at, _seq, ev) = self.queue.as_core().pop_min()?;
        debug_assert!(at >= self.now, "event queue went backwards");
        self.now = at;
        Some((at, ev))
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        self.queue.as_core().peek_min().map(|(at, _)| at)
    }

    /// Discards all pending events without dispatching them.
    pub fn clear(&mut self) {
        self.queue.as_core().clear();
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler::new()
    }
}

/// Runs the world until the event queue drains or the next event would
/// fire after `until`. Returns the final simulation time (the timestamp
/// of the last dispatched event).
///
/// Events scheduled exactly at `until` are still dispatched.
pub fn run<W: World>(world: &mut W, sched: &mut Scheduler<W::Event>, until: Nanos) -> Nanos {
    let mut last = sched.now();
    while let Some(next) = sched.peek_time() {
        if next > until {
            break;
        }
        let (now, ev) = sched.pop().expect("peeked event must pop");
        world.handle(now, ev, sched);
        last = now;
    }
    last
}

/// Runs the world until `predicate(world)` becomes true, the queue
/// drains, or `until` is exceeded. Returns the final simulation time.
///
/// The predicate is checked after every dispatched event.
pub fn run_until<W: World>(
    world: &mut W,
    sched: &mut Scheduler<W::Event>,
    until: Nanos,
    mut predicate: impl FnMut(&W) -> bool,
) -> Nanos {
    let mut last = sched.now();
    while let Some(next) = sched.peek_time() {
        if next > until {
            break;
        }
        let (now, ev) = sched.pop().expect("peeked event must pop");
        world.handle(now, ev, sched);
        last = now;
        if predicate(world) {
            break;
        }
    }
    last
}

/// Wall-clock DES self-profiler: how fast is the simulator itself?
///
/// Per subsystem (a caller-chosen phase or component name) it records
/// events dispatched, simulated nanoseconds covered, and wall-clock
/// time burned — sampled **outside** simulated time, so determinism is
/// untouched: a profiled run and an unprofiled run produce bit-identical
/// simulated results. The derived rates (events/wall-s,
/// simulated-ns/wall-s) are the baseline and regression gate for the
/// ROADMAP's sharded-DES work; `bench workload` lands them in
/// `BENCH_workload.json` as `sim_rate`.
///
/// This type is the sanctioned home of `Instant::now` in simulation
/// crates — wall clock *is* the measurement target here. simlint's
/// wall-clock allowlist self-check pins the number of such sites.
pub struct Profiler {
    rows: BTreeMap<&'static str, ProfRow>,
    started: std::time::Instant,
}

/// Accumulated totals for one profiled subsystem.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProfRow {
    /// Wall-clock time spent inside [`Profiler::measure`] calls.
    pub wall: Duration,
    /// Events (or operations) attributed via [`Profiler::add_events`].
    pub events: u64,
    /// Simulated time covered, attributed via [`Profiler::add_sim`].
    pub sim: Nanos,
}

/// One rendered row of a [`ProfilerReport`].
#[derive(Clone, Debug)]
pub struct ProfiledSubsystem {
    /// Subsystem name.
    pub name: &'static str,
    /// Events dispatched.
    pub events: u64,
    /// Wall-clock nanoseconds burned.
    pub wall_ns: u64,
    /// Simulated nanoseconds covered.
    pub sim_ns: u64,
    /// Events per wall-clock second.
    pub events_per_wall_s: f64,
    /// Simulated nanoseconds per wall-clock second (the DES "speed of
    /// light": 1e9 means real time).
    pub sim_ns_per_wall_s: f64,
}

/// Totals + per-subsystem rows from a [`Profiler`], sorted by name.
#[derive(Clone, Debug)]
pub struct ProfilerReport {
    /// Per-subsystem rows, sorted by subsystem name.
    pub rows: Vec<ProfiledSubsystem>,
    /// Total wall-clock nanoseconds since [`Profiler::start`].
    pub wall_ns: u64,
    /// Total events across subsystems.
    pub events: u64,
    /// Total simulated nanoseconds across subsystems.
    pub sim_ns: u64,
    /// Total events per wall-clock second.
    pub events_per_wall_s: f64,
    /// Total simulated nanoseconds per wall-clock second.
    pub sim_ns_per_wall_s: f64,
}

impl Profiler {
    /// Starts profiling; the wall clock runs from here.
    pub fn start() -> Profiler {
        Profiler {
            rows: BTreeMap::new(),
            // simlint: allow(wall-clock) -- DES self-profiler: wall clock is the measurement target, sampled outside simulated time
            started: std::time::Instant::now(),
        }
    }

    /// Runs `f`, charging its wall-clock time to `subsystem`.
    pub fn measure<R>(&mut self, subsystem: &'static str, f: impl FnOnce() -> R) -> R {
        // simlint: allow(wall-clock) -- DES self-profiler: wall clock is the measurement target, sampled outside simulated time
        let t0 = std::time::Instant::now();
        let r = f();
        let elapsed = t0.elapsed();
        self.rows.entry(subsystem).or_default().wall += elapsed;
        r
    }

    /// Attributes `n` dispatched events (or completed operations) to
    /// `subsystem`.
    pub fn add_events(&mut self, subsystem: &'static str, n: u64) {
        self.rows.entry(subsystem).or_default().events += n;
    }

    /// Attributes `d` of simulated-time coverage to `subsystem`.
    pub fn add_sim(&mut self, subsystem: &'static str, d: Nanos) {
        self.rows.entry(subsystem).or_default().sim += d;
    }

    /// Raw accumulated rows, sorted by subsystem name.
    pub fn rows(&self) -> impl Iterator<Item = (&'static str, &ProfRow)> {
        self.rows.iter().map(|(&k, v)| (k, v))
    }

    /// Renders the report: per-subsystem rates plus totals. Zero wall
    /// time clamps to 1 ns so rates stay finite (and strictly positive
    /// whenever any simulated time was covered).
    pub fn report(&self) -> ProfilerReport {
        let per_s = |n: f64, wall_ns: u64| n * 1e9 / wall_ns.max(1) as f64;
        let rows: Vec<ProfiledSubsystem> = self
            .rows
            .iter()
            .map(|(&name, r)| {
                let wall_ns = r.wall.as_nanos().min(u128::from(u64::MAX)) as u64;
                ProfiledSubsystem {
                    name,
                    events: r.events,
                    wall_ns,
                    sim_ns: r.sim.as_nanos(),
                    events_per_wall_s: per_s(r.events as f64, wall_ns),
                    sim_ns_per_wall_s: per_s(r.sim.as_nanos() as f64, wall_ns),
                }
            })
            .collect();
        let wall_ns = self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let events: u64 = rows.iter().map(|r| r.events).sum();
        let sim_ns: u64 = rows.iter().map(|r| r.sim_ns).sum();
        ProfilerReport {
            rows,
            wall_ns,
            events,
            sim_ns,
            events_per_wall_s: per_s(events as f64, wall_ns),
            sim_ns_per_wall_s: per_s(sim_ns as f64, wall_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<u32>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, _now: Nanos, ev: u32, _s: &mut Scheduler<u32>) {
            self.seen.push(ev);
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut w = Recorder { seen: vec![] };
        let mut s = Scheduler::new();
        s.schedule(Nanos(30), 3);
        s.schedule(Nanos(10), 1);
        s.schedule(Nanos(20), 2);
        run(&mut w, &mut s, Nanos::MAX);
        assert_eq!(w.seen, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_fire_fifo() {
        let mut w = Recorder { seen: vec![] };
        let mut s = Scheduler::new();
        for i in 0..100 {
            s.schedule(Nanos(5), i);
        }
        run(&mut w, &mut s, Nanos::MAX);
        assert_eq!(w.seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn run_respects_horizon() {
        let mut w = Recorder { seen: vec![] };
        let mut s = Scheduler::new();
        s.schedule(Nanos(10), 1);
        s.schedule(Nanos(20), 2);
        s.schedule(Nanos(21), 3);
        let end = run(&mut w, &mut s, Nanos(20));
        assert_eq!(w.seen, vec![1, 2]);
        assert_eq!(end, Nanos(20));
        assert_eq!(s.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        struct Bad;
        impl World for Bad {
            type Event = ();
            fn handle(&mut self, now: Nanos, _: (), s: &mut Scheduler<()>) {
                s.schedule(now - Nanos(1), ());
            }
        }
        let mut s = Scheduler::new();
        s.schedule(Nanos(10), ());
        run(&mut Bad, &mut s, Nanos::MAX);
    }

    #[test]
    fn run_until_predicate_stops_early() {
        let mut w = Recorder { seen: vec![] };
        let mut s = Scheduler::new();
        for i in 0..10 {
            s.schedule(Nanos(i as u64 * 10), i);
        }
        run_until(&mut w, &mut s, Nanos::MAX, |w| w.seen.len() == 4);
        assert_eq!(w.seen, vec![0, 1, 2, 3]);
        assert_eq!(s.pending(), 6);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        struct Chain {
            times: Vec<Nanos>,
        }
        impl World for Chain {
            type Event = ();
            fn handle(&mut self, now: Nanos, _: (), s: &mut Scheduler<()>) {
                self.times.push(now);
                if self.times.len() < 3 {
                    s.schedule_in(Nanos(7), ());
                }
            }
        }
        let mut w = Chain { times: vec![] };
        let mut s = Scheduler::new();
        s.schedule(Nanos(1), ());
        run(&mut w, &mut s, Nanos::MAX);
        assert_eq!(w.times, vec![Nanos(1), Nanos(8), Nanos(15)]);
    }

    #[test]
    fn profiler_accumulates_and_reports() {
        let mut p = Profiler::start();
        let v = p.measure("pump", || 40 + 2);
        assert_eq!(v, 42);
        p.add_events("pump", 10);
        p.add_sim("pump", Nanos::from_millis(5));
        p.add_events("search", 1);
        let rep = p.report();
        assert_eq!(rep.rows.len(), 2);
        // BTreeMap order: "pump" < "search".
        assert_eq!(rep.rows[0].name, "pump");
        assert_eq!(rep.rows[0].events, 10);
        assert_eq!(rep.rows[0].sim_ns, 5_000_000);
        assert_eq!(rep.events, 11);
        assert_eq!(rep.sim_ns, 5_000_000);
        assert!(rep.wall_ns > 0);
        assert!(rep.sim_ns_per_wall_s > 0.0);
        assert!(rep.events_per_wall_s > 0.0);
    }

    #[test]
    fn clear_discards_pending() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule(Nanos(1), 1);
        s.schedule(Nanos(2), 2);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.pop().map(|(_, e)| e), None);
    }

    // -------------------------------------------------------------
    // Calendar queue vs reference heap: differential tests
    // -------------------------------------------------------------

    /// Drives both schedulers through the same deterministic workload
    /// of interleaved schedules and pops, asserting bit-identical
    /// dispatch sequences.
    fn differential(seed: u64, ops: usize, max_gap: u64, burst: u64) {
        let mut rng = crate::rng::Rng::new(seed);
        let mut cal: Scheduler<u64> = Scheduler::new();
        let mut heap: Scheduler<u64> = Scheduler::with_reference_heap();
        let mut payload = 0u64;
        for _ in 0..ops {
            let r = rng.next_u64();
            if r % 100 < 60 || cal.is_empty() {
                // Schedule 1..=burst events at (possibly equal) times
                // at or after the current clock.
                let n = 1 + r % burst;
                for _ in 0..n {
                    let gap = rng.next_u64() % max_gap;
                    let at = Nanos(cal.now().0 + gap);
                    cal.schedule(at, payload);
                    heap.schedule(at, payload);
                    payload += 1;
                }
            } else {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(a, b, "divergent pop (seed {seed})");
            }
            assert_eq!(cal.pending(), heap.pending());
            assert_eq!(cal.peek_time(), heap.peek_time());
        }
        // Drain both completely.
        loop {
            let a = cal.pop();
            let b = heap.pop();
            assert_eq!(a, b, "divergent drain (seed {seed})");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn calendar_matches_heap_dense_ns_grain() {
        // Dense ns-scale gaps with heavy same-time bursts: exercises
        // FIFO tie-break inside single buckets and resizing upward.
        differential(1, 4_000, 50, 8);
    }

    #[test]
    fn calendar_matches_heap_sparse_ms_grain() {
        // Sparse ms-scale gaps: entries land whole years past the
        // cursor, exercising the global-scan fallback.
        differential(2, 2_000, 5_000_000, 2);
    }

    #[test]
    fn calendar_matches_heap_mixed_scales() {
        // Mixed ns..s gaps in one run: forces repeated width
        // re-derivation as the time span stretches.
        let mut rng = crate::rng::Rng::new(7);
        let mut cal: Scheduler<u32> = Scheduler::new();
        let mut heap: Scheduler<u32> = Scheduler::with_reference_heap();
        let mut i = 0u32;
        for _ in 0..3_000 {
            let r = rng.next_u64();
            if r % 10 < 6 || cal.is_empty() {
                // Gap magnitude spans 9 decades.
                let mag = 10u64.pow((rng.next_u64() % 9) as u32);
                let at = Nanos(cal.now().0 + rng.next_u64() % mag);
                cal.schedule(at, i);
                heap.schedule(at, i);
                i += 1;
            } else {
                assert_eq!(cal.pop(), heap.pop());
            }
        }
        while !cal.is_empty() {
            assert_eq!(cal.pop(), heap.pop());
        }
        assert!(heap.is_empty());
    }

    #[test]
    fn heap_backed_world_runs_identically() {
        // The same self-scheduling world, run under both queues,
        // produces identical dispatch traces and final times.
        struct Chain {
            rng: crate::rng::Rng,
            trace: Vec<(Nanos, u32)>,
        }
        impl World for Chain {
            type Event = u32;
            fn handle(&mut self, now: Nanos, ev: u32, s: &mut Scheduler<u32>) {
                self.trace.push((now, ev));
                // Bound the run by dispatch count; fan out unevenly
                // (sometimes two children, with same-time collisions),
                // pruned back to one past the halfway mark so the
                // population both grows and drains.
                if self.trace.len() < 4_000 {
                    let gap = self.rng.next_u64() % 64;
                    s.schedule(now + Nanos(gap), ev + 1);
                    if ev.is_multiple_of(3) && self.trace.len() < 2_000 {
                        s.schedule(now + Nanos(gap), ev + 2);
                    }
                }
            }
        }
        let mut runs = Vec::new();
        for heap in [false, true] {
            let mut w = Chain {
                rng: crate::rng::Rng::new(99),
                trace: vec![],
            };
            let mut s = if heap {
                Scheduler::with_reference_heap()
            } else {
                Scheduler::new()
            };
            s.schedule(Nanos(0), 0);
            let end = run(&mut w, &mut s, Nanos::MAX);
            runs.push((w.trace, end));
        }
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn calendar_clear_then_reuse() {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..100 {
            s.schedule(Nanos(i), i as u32);
        }
        s.clear();
        assert!(s.is_empty());
        s.schedule(Nanos(1_000_000), 7);
        assert_eq!(s.pop(), Some((Nanos(1_000_000), 7)));
    }
}
