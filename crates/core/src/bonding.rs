//! Device harvesting (§1, benefit 4): "During demand spikes, a host
//! can harvest all the PCIe devices in the pool to achieve higher
//! aggregated performance."
//!
//! [`BondedNic`] stripes a host's transmit stream round-robin across
//! every live NIC in the pod — its own plus every remote one — so a
//! single host can burst at the aggregate line rate of the rack.

use cxl_fabric::HostId;
use pcie_sim::DeviceId;
use simkit::Nanos;

use crate::pod::{PodSim, Submitted};
use crate::proto::Msg;
use crate::vdev::{DeviceKind, PoolError};

/// A transmit bond over several pooled NICs.
pub struct BondedNic {
    /// The harvesting host.
    pub owner: HostId,
    devs: Vec<DeviceId>,
    next: usize,
}

/// Result of a bonded burst.
#[derive(Clone, Copy, Debug)]
pub struct BurstResult {
    /// Frames sent.
    pub frames: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Wire-exit time of the last frame.
    pub done: Nanos,
    /// When the burst was issued.
    pub issued: Nanos,
}

impl BurstResult {
    /// Aggregate goodput in Gbps.
    pub fn gbps(&self) -> f64 {
        let dt = (self.done - self.issued).as_nanos().max(1);
        self.bytes as f64 * 8.0 / dt as f64
    }
}

impl BondedNic {
    /// Bonds `owner` to every live NIC in the pod.
    pub fn harvest_all(pod: &PodSim, owner: HostId) -> Result<BondedNic, PoolError> {
        let devs: Vec<DeviceId> = pod
            .orch
            .devices_of(DeviceKind::Nic)
            .into_iter()
            .filter(|&d| pod.orch.device(d).map(|i| i.up).unwrap_or(false))
            .collect();
        if devs.is_empty() {
            return Err(PoolError::NoDevice(DeviceKind::Nic));
        }
        Ok(BondedNic {
            owner,
            devs,
            next: 0,
        })
    }

    /// Bonds an explicit device set.
    pub fn over(owner: HostId, devs: Vec<DeviceId>) -> BondedNic {
        assert!(!devs.is_empty(), "bond needs at least one NIC");
        BondedNic {
            owner,
            devs,
            next: 0,
        }
    }

    /// Number of NICs in the bond.
    pub fn width(&self) -> usize {
        self.devs.len()
    }

    /// Sends `frames` frames of `frame_len` bytes round-robin across
    /// the bond, keeping a submission window in flight (bounded by the
    /// control rings' capacity) and overlapping awaits with submits.
    pub fn burst(
        &mut self,
        pod: &mut PodSim,
        frames: u64,
        frame_len: u32,
        deadline: Nanos,
    ) -> Result<BurstResult, PoolError> {
        // Stay well below the per-ring slot count so credit returns
        // keep up (each submit is 1 fragment on one peer's ring).
        let window = 16 * self.devs.len().max(1);
        let issued = pod.time();
        let payload = vec![0xB0u8; frame_len as usize];
        let mut inflight: std::collections::VecDeque<Submitted> = Default::default();
        let mut done = issued;
        for _ in 0..frames {
            let dev = self.devs[self.next % self.devs.len()];
            self.next += 1;
            if inflight.len() >= window {
                let sub = inflight.pop_front().expect("window nonempty");
                let r = pod.await_submitted(self.owner, sub, deadline)?;
                done = done.max(r.at);
            }
            // A blocked ring means credits are in flight: drain one
            // more completion and retry once.
            let sub = match self.submit_on(pod, dev, &payload) {
                Ok(s) => s,
                Err(PoolError::ChannelBlocked) => {
                    while let Some(prev) = inflight.pop_front() {
                        let r = pod.await_submitted(self.owner, prev, deadline)?;
                        done = done.max(r.at);
                    }
                    self.submit_on(pod, dev, &payload)?
                }
                Err(e) => return Err(e),
            };
            inflight.push_back(sub);
        }
        for sub in inflight {
            let r = pod.await_submitted(self.owner, sub, deadline)?;
            done = done.max(r.at);
        }
        Ok(BurstResult {
            frames,
            bytes: frames * frame_len as u64,
            done,
            issued,
        })
    }

    /// Submits a single frame on the next NIC in the bond without
    /// awaiting it (callers interleaving several bonds' traffic pair
    /// this with [`PodSim::await_submitted`]).
    pub fn submit_one(&mut self, pod: &mut PodSim, payload: &[u8]) -> Result<Submitted, PoolError> {
        let dev = self.devs[self.next % self.devs.len()];
        self.next += 1;
        self.submit_on(pod, dev, payload)
    }

    fn submit_on(
        &self,
        pod: &mut PodSim,
        dev: DeviceId,
        payload: &[u8],
    ) -> Result<Submitted, PoolError> {
        let owner = self.owner;
        let attach = pod
            .attach_of(dev)
            .ok_or(PoolError::NoDevice(DeviceKind::Nic))?;
        let buf = pod.io_buf(owner);
        let now = pod.agents[owner.0 as usize].clock();
        let staged = pod.fabric.nt_store(now, owner, buf, payload)?;
        pod.agents[owner.0 as usize].advance_clock(now + Nanos(50));
        if attach == owner {
            let agent = &mut pod.agents[owner.0 as usize];
            let Some(nic) = agent.nics.get_mut(&dev) else {
                return Err(PoolError::Device(pcie_sim::DeviceError::Failed(dev)));
            };
            let t = staged + nic.doorbell_cost();
            nic.ring_doorbell();
            let frame = nic
                .transmit(
                    &mut pod.fabric,
                    t,
                    pcie_sim::BufRef::Pool(buf),
                    payload.len() as u32,
                )
                .map_err(PoolError::Device)?;
            let at = frame.wire_exit;
            agent.out_frames.push((dev, frame));
            return Ok(Submitted::Local(crate::pod::OpResult {
                op: 0,
                at,
                local: true,
            }));
        }
        let op = pod.take_op_id();
        let msg = Msg::TxSubmit {
            op,
            dev,
            buf,
            len: payload.len() as u32,
        };
        pod.agents[owner.0 as usize].send_to(
            &mut pod.fabric,
            crate::agent::Peer::Host(attach),
            &msg,
        )?;
        Ok(Submitted::Remote { op, attach })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::PodParams;

    fn deadline(pod: &PodSim) -> Nanos {
        pod.time() + Nanos::from_millis(200)
    }

    #[test]
    fn harvest_finds_all_live_nics() {
        let pod = PodSim::new(PodParams::new(8, 4));
        let bond = BondedNic::harvest_all(&pod, HostId(7)).expect("bond");
        assert_eq!(bond.width(), 4);
    }

    #[test]
    fn bonded_burst_uses_every_nic() {
        let mut pod = PodSim::new(PodParams::new(8, 4));
        let mut bond = BondedNic::harvest_all(&pod, HostId(7)).expect("bond");
        let d = deadline(&pod);
        let r = bond.burst(&mut pod, 8, 1500, d).expect("burst");
        assert_eq!(r.frames, 8);
        for dev in pod.orch.devices_of(DeviceKind::Nic) {
            let frames = pod.take_frames(dev);
            assert_eq!(frames.len(), 2, "NIC {dev:?} should carry 2 of 8 frames");
        }
    }

    #[test]
    fn harvesting_scales_aggregate_bandwidth() {
        // Burst enough bytes that line-rate serialization dominates:
        // 4 NICs should finish the burst much faster than 1.
        let frames = 256u64;
        let mut results = Vec::new();
        for nics in [1u16, 4] {
            let mut params = PodParams::new(8, nics);
            params.io_slots = 64;
            let mut pod = PodSim::new(params);
            let mut bond = BondedNic::harvest_all(&pod, HostId(7)).expect("bond");
            let d = deadline(&pod);
            let r = bond.burst(&mut pod, frames, 9000, d).expect("burst");
            results.push(r.gbps());
        }
        assert!(
            results[1] > results[0] * 2.0,
            "4-NIC harvest {} Gbps vs 1-NIC {} Gbps",
            results[1],
            results[0]
        );
    }

    #[test]
    fn empty_pool_errors() {
        let pod = PodSim::new(PodParams {
            nic_hosts: vec![],
            ..PodParams::new(2, 0)
        });
        assert!(matches!(
            BondedNic::harvest_all(&pod, HostId(0)),
            Err(PoolError::NoDevice(DeviceKind::Nic))
        ));
    }
}
