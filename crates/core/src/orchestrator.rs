//! The pooling orchestrator (§4.2): the pool's control plane.
//!
//! Runs as a management process on one host of the pod and talks to
//! every agent over shared-memory channels. It owns the device registry
//! and the device-to-host assignments, allocates devices on request
//! (local-first under a load threshold, else least-utilized in the pod),
//! reacts to device failures by re-assigning affected hosts, and
//! migrates load away from hot devices.

use std::collections::{BTreeMap, HashMap};

use cxl_fabric::{DomainId, Fabric, FabricError, HostId};
use pcie_sim::DeviceId;
use shmem::channel::ChannelSend;
use shmem::ring::PollOutcome;
use simkit::rng::Rng;
use simkit::Nanos;

use crate::agent::Link;
use crate::proto::Msg;
use crate::striping::ReplicaSet;
use crate::vdev::{DeviceKind, PoolError};

/// Device allocation policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocPolicy {
    /// The paper's policy: prefer a device attached to the requesting
    /// host while its load is below `threshold` (percent); otherwise
    /// pick the least-utilized device in the pod.
    LocalFirst {
        /// Load percentage above which local devices are bypassed.
        threshold: u8,
    },
    /// Always pick the least-utilized device, ignoring locality.
    LeastUtilized,
    /// Uniform random among live devices (ablation baseline).
    Random,
}

/// Registry entry for one physical device.
#[derive(Clone, Debug)]
pub struct DevInfo {
    /// Device class.
    pub kind: DeviceKind,
    /// Host it is physically attached to.
    pub attach: HostId,
    /// Liveness, as believed by the orchestrator.
    pub up: bool,
    /// Last reported load (0-100).
    pub load: u8,
    /// Hosts currently assigned to this device.
    pub users: Vec<HostId>,
}

/// One failover event, for the experiment log.
#[derive(Clone, Copy, Debug)]
pub struct FailoverEvent {
    /// When the orchestrator processed the failure report.
    pub at: Nanos,
    /// The failed device.
    pub failed: DeviceId,
    /// The host that was moved.
    pub host: HostId,
    /// Its replacement device.
    pub replacement: DeviceId,
}

/// The pooling orchestrator.
pub struct Orchestrator {
    /// Host the orchestrator runs on.
    pub host: HostId,
    policy: AllocPolicy,
    links: Vec<(HostId, Link)>,
    /// Device registry. Ordered so every walk (choose, balance,
    /// devices_of) visits devices in id order: `AllocPolicy::Random`
    /// indexes into the collected list with the seeded RNG, and a
    /// `HashMap` here made that pick — and thus placement — vary run
    /// to run (simlint `hash-iter`; same class as the PR 4
    /// `Segment::spread` bug).
    registry: BTreeMap<DeviceId, DevInfo>,
    assignments: HashMap<(HostId, DeviceKind), DeviceId>,
    host_loads: HashMap<HostId, u8>,
    /// Failovers performed, in order.
    pub failover_log: Vec<FailoverEvent>,
    /// Migrations performed by load balancing.
    pub migrations: u64,
    clock: Nanos,
    rng: Rng,
}

impl Orchestrator {
    /// Creates an orchestrator running on `host`.
    pub fn new(host: HostId, policy: AllocPolicy, seed: u64) -> Orchestrator {
        Orchestrator {
            host,
            policy,
            links: Vec::new(),
            registry: BTreeMap::new(),
            assignments: HashMap::new(),
            host_loads: HashMap::new(),
            failover_log: Vec::new(),
            migrations: 0,
            clock: Nanos::ZERO,
            rng: Rng::new(seed),
        }
    }

    /// Attaches the channel link to `agent_host`'s agent.
    pub fn add_link(&mut self, agent_host: HostId, link: Link) {
        self.links.push((agent_host, link));
    }

    /// Replaces the link to `agent_host` (pool-failure recovery).
    pub fn replace_link(&mut self, agent_host: HostId, link: Link) {
        if let Some(slot) = self.links.iter_mut().find(|(h, _)| *h == agent_host) {
            slot.1 = link;
        } else {
            self.links.push((agent_host, link));
        }
    }

    /// Registers a physical device.
    pub fn register(&mut self, dev: DeviceId, kind: DeviceKind, attach: HostId) {
        self.registry.insert(
            dev,
            DevInfo {
                kind,
                attach,
                up: true,
                load: 0,
                users: Vec::new(),
            },
        );
    }

    /// Registry lookup.
    pub fn device(&self, dev: DeviceId) -> Option<&DevInfo> {
        self.registry.get(&dev)
    }

    /// Overrides a device's reported load (tests and synthetic setups).
    pub fn set_load(&mut self, dev: DeviceId, load: u8) {
        if let Some(info) = self.registry.get_mut(&dev) {
            info.load = load;
        }
    }

    /// Records a host's reported load (normally fed by `HostLoad`
    /// messages; exposed for synthetic setups).
    pub fn set_host_load(&mut self, host: HostId, load: u8) {
        self.host_loads.insert(host, load);
    }

    /// Current assignment of `host` for `kind`.
    pub fn assignment(&self, host: HostId, kind: DeviceKind) -> Option<DeviceId> {
        self.assignments.get(&(host, kind)).copied()
    }

    /// The orchestrator's clock.
    pub fn clock(&self) -> Nanos {
        self.clock
    }

    /// Moves the clock forward.
    pub fn advance_clock(&mut self, to: Nanos) {
        if to > self.clock {
            self.clock = to;
        }
    }

    /// Picks a device of `kind` for `host` under the configured policy.
    /// Does not change any state.
    pub fn choose(&mut self, host: HostId, kind: DeviceKind) -> Result<DeviceId, PoolError> {
        let live: Vec<(DeviceId, u8, usize, HostId)> = self
            .registry
            .iter()
            .filter(|(_, d)| d.kind == kind && d.up)
            .map(|(id, d)| (*id, d.load, d.users.len(), d.attach))
            .collect();
        if live.is_empty() {
            return Err(PoolError::NoDevice(kind));
        }
        let pick = match self.policy {
            AllocPolicy::LocalFirst { threshold } => {
                let local = live
                    .iter()
                    .filter(|&&(_, load, _, attach)| attach == host && load < threshold)
                    .min_by_key(|&&(id, load, users, _)| (load, users, id));
                match local {
                    Some(&(id, _, _, _)) => id,
                    None => Self::least_utilized(&live),
                }
            }
            AllocPolicy::LeastUtilized => Self::least_utilized(&live),
            AllocPolicy::Random => live[self.rng.below(live.len() as u64) as usize].0,
        };
        Ok(pick)
    }

    fn least_utilized(live: &[(DeviceId, u8, usize, HostId)]) -> DeviceId {
        live.iter()
            .min_by_key(|&&(id, load, users, _)| (load, users, id))
            .map(|&(id, _, _, _)| id)
            .expect("nonempty")
    }

    /// Allocates a device of `kind` to `host`: choose, record, and push
    /// an `Assign` to the host's agent. Returns the device.
    pub fn allocate(
        &mut self,
        fabric: &mut Fabric,
        host: HostId,
        kind: DeviceKind,
    ) -> Result<DeviceId, PoolError> {
        let dev = self.choose(host, kind)?;
        self.bind(fabric, host, kind, dev)?;
        Ok(dev)
    }

    /// Binds `host` to a *specific* device (connection migration and
    /// operator-directed placement).
    pub fn allocate_specific(
        &mut self,
        fabric: &mut Fabric,
        host: HostId,
        kind: DeviceKind,
        dev: DeviceId,
    ) -> Result<(), PoolError> {
        let info = self.registry.get(&dev).ok_or(PoolError::NoDevice(kind))?;
        if !info.up || info.kind != kind {
            return Err(PoolError::NoDevice(kind));
        }
        self.bind(fabric, host, kind, dev)
    }

    fn bind(
        &mut self,
        fabric: &mut Fabric,
        host: HostId,
        kind: DeviceKind,
        dev: DeviceId,
    ) -> Result<(), PoolError> {
        // Unlink any previous assignment.
        if let Some(old) = self.assignments.insert((host, kind), dev) {
            if let Some(info) = self.registry.get_mut(&old) {
                info.users.retain(|&h| h != host);
            }
        }
        let info = self
            .registry
            .get_mut(&dev)
            .expect("chosen device is registered");
        info.users.push(host);
        // Optimistic estimate until the next DevLoad report, so a burst
        // of allocations does not pile onto one device.
        info.load = info.load.saturating_add(5);
        self.push_assign(fabric, host, kind, dev)
    }

    fn push_assign(
        &mut self,
        fabric: &mut Fabric,
        host: HostId,
        kind: DeviceKind,
        dev: DeviceId,
    ) -> Result<(), PoolError> {
        let msg = Msg::Assign {
            host,
            kind: kind.as_u8(),
            dev,
        };
        let clock = self.clock;
        let Some((_, link)) = self.links.iter_mut().find(|(h, _)| *h == host) else {
            // No link (unit tests / local bookkeeping only): the
            // registry update stands, but nothing is pushed.
            return Ok(());
        };
        match link.tx.send(fabric, clock, &msg.encode())? {
            ChannelSend::Sent(_) => {
                self.clock += Nanos(30);
                Ok(())
            }
            ChannelSend::Blocked { at, .. } => {
                self.clock = self.clock.max(at);
                Err(PoolError::ChannelBlocked)
            }
        }
    }

    /// Polls agent channels until `until`, reacting to failure and load
    /// reports.
    pub fn pump(&mut self, fabric: &mut Fabric, until: Nanos) {
        while self.clock < until {
            if self.links.is_empty() {
                self.clock = until;
                return;
            }
            let before = self.clock;
            let mut inbox: Vec<Msg> = Vec::new();
            for i in 0..self.links.len() {
                let clock = self.clock;
                let outcome = {
                    let (_, link) = &mut self.links[i];
                    link.rx.poll(fabric, clock)
                };
                match outcome {
                    Ok(PollOutcome::Empty(t)) => self.clock = t,
                    Ok(PollOutcome::Msg { data, at }) => {
                        self.clock = at;
                        if let Ok(msg) = Msg::decode(&data) {
                            inbox.push(msg);
                        }
                    }
                    Err(_) => {}
                }
            }
            if self.clock == before {
                // Every link errored without consuming time (all rings
                // sit on failed pool memory): burn the quantum rather
                // than spinning forever during the outage.
                self.clock = until;
            }
            for msg in inbox {
                self.handle(fabric, msg);
            }
        }
    }

    fn handle(&mut self, fabric: &mut Fabric, msg: Msg) {
        match msg {
            Msg::DevFailed { dev, .. } => self.on_failure(fabric, dev),
            Msg::DevLoad { dev, load } => {
                if let Some(info) = self.registry.get_mut(&dev) {
                    info.load = load;
                }
            }
            Msg::HostLoad { host, load } => {
                self.host_loads.insert(host, load);
            }
            _ => {}
        }
    }

    /// Marks `dev` down and fails all its users over to replacements.
    pub fn on_failure(&mut self, fabric: &mut Fabric, dev: DeviceId) {
        let Some(info) = self.registry.get_mut(&dev) else {
            return;
        };
        if !info.up {
            return; // Duplicate report.
        }
        info.up = false;
        let kind = info.kind;
        let users = std::mem::take(&mut info.users);
        for host in users {
            self.assignments.remove(&(host, kind));
            match self.choose(host, kind) {
                Ok(replacement) => {
                    if self.bind(fabric, host, kind, replacement).is_ok() {
                        let at = self.clock;
                        self.failover_log.push(FailoverEvent {
                            at,
                            failed: dev,
                            host,
                            replacement,
                        });
                    }
                }
                Err(_) => {
                    // Pool exhausted for this kind; the host stays
                    // unbound and its next operation reports
                    // NotAssigned.
                }
            }
        }
    }

    /// Marks a repaired device up again (it rejoins the candidate set).
    pub fn on_repair(&mut self, dev: DeviceId) {
        if let Some(info) = self.registry.get_mut(&dev) {
            info.up = true;
            info.load = 0;
        }
    }

    /// One load-balancing pass: if the spread between the hottest and
    /// coolest live device of a kind exceeds `spread_pct`, move one user
    /// from the hottest to the coolest. Returns migrations performed.
    pub fn balance(&mut self, fabric: &mut Fabric, spread_pct: u8) -> u64 {
        let mut moved = 0;
        for kind in [DeviceKind::Nic, DeviceKind::Ssd, DeviceKind::Accel] {
            let mut live: Vec<(DeviceId, u8, usize)> = self
                .registry
                .iter()
                .filter(|(_, d)| d.kind == kind && d.up)
                .map(|(id, d)| (*id, d.load, d.users.len()))
                .collect();
            if live.len() < 2 {
                continue;
            }
            live.sort_by_key(|&(id, load, _)| (load, id));
            let (cool, cool_load, _) = live[0];
            let &(hot, hot_load, hot_users) = live.last().expect("len >= 2");
            if hot_load.saturating_sub(cool_load) < spread_pct || hot_users == 0 {
                continue;
            }
            // Move the heaviest known user of the hot device (falling
            // back to the first when no host reports exist).
            let host = self.registry[&hot]
                .users
                .iter()
                .copied()
                .max_by_key(|h| self.host_loads.get(h).copied().unwrap_or(0))
                .expect("hot device has users");
            if self.bind(fabric, host, kind, cool).is_ok() {
                // Shift the load estimate so repeated passes don't
                // thrash before fresh reports arrive.
                let delta = (hot_load - cool_load) / 2;
                if let Some(i) = self.registry.get_mut(&hot) {
                    i.load = i.load.saturating_sub(delta);
                }
                self.migrations += 1;
                moved += 1;
            }
        }
        moved
    }

    /// Picks `copies` distinct failure domains for a tenant's
    /// replicated region, mirroring the device policy: the tenant's
    /// *home* domain leads while its utilization is below the
    /// local-first threshold, every further copy goes to the
    /// least-utilized (most-free) remaining domain — and two copies of
    /// one tenant's data never share a failure domain.
    pub fn choose_replica_domains(
        &self,
        fabric: &Fabric,
        tenant: HostId,
        len: u64,
        copies: usize,
    ) -> Result<Vec<DomainId>, PoolError> {
        assert!(copies > 0, "a placement needs at least one copy");
        let mut cands: Vec<DomainId> = fabric
            .topology()
            .reachable_domains(tenant)
            .into_iter()
            .filter(|&d| fabric.domain_free(d) >= len)
            .collect();
        if cands.len() < copies {
            return Err(PoolError::Fabric(FabricError::InsufficientDomains {
                wanted: copies,
                available: cands.len(),
            }));
        }
        // Least-utilized order, ties by id for determinism.
        cands.sort_by_key(|&d| (std::cmp::Reverse(fabric.domain_free(d)), d));
        if let AllocPolicy::LocalFirst { threshold } = self.policy {
            if let Some(home) = fabric.topology().home_domain(tenant) {
                let cap = fabric.domain_capacity(home);
                let used_pct = (cap - fabric.domain_free(home))
                    .checked_mul(100)
                    .and_then(|u| u.checked_div(cap))
                    .unwrap_or(100) as u8;
                if used_pct < threshold {
                    if let Some(pos) = cands.iter().position(|&d| d == home) {
                        let h = cands.remove(pos);
                        cands.insert(0, h);
                    }
                }
            }
        }
        cands.truncate(copies);
        Ok(cands)
    }

    /// Places a tenant's replicated region under
    /// [`Orchestrator::choose_replica_domains`] and allocates it as a
    /// [`ReplicaSet`] (one pinned, intra-domain-striped copy per chosen
    /// domain).
    pub fn place_replicas(
        &self,
        fabric: &mut Fabric,
        tenant: HostId,
        len: u64,
        copies: usize,
    ) -> Result<ReplicaSet, PoolError> {
        let domains = self.choose_replica_domains(fabric, tenant, len, copies)?;
        ReplicaSet::create(fabric, &[tenant], len, &domains).map_err(PoolError::from)
    }

    /// All registered devices of a kind, sorted.
    pub fn devices_of(&self, kind: DeviceKind) -> Vec<DeviceId> {
        let mut v: Vec<DeviceId> = self
            .registry
            .iter()
            .filter(|(_, d)| d.kind == kind)
            .map(|(id, _)| *id)
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_fabric::PodConfig;

    fn orch(policy: AllocPolicy) -> (Fabric, Orchestrator) {
        let f = Fabric::new(PodConfig::new(4, 2, 2));
        let mut o = Orchestrator::new(HostId(0), policy, 1);
        // NICs on hosts 0 and 1; none on 2, 3.
        o.register(DeviceId(0), DeviceKind::Nic, HostId(0));
        o.register(DeviceId(1), DeviceKind::Nic, HostId(1));
        (f, o)
    }

    #[test]
    fn local_first_prefers_local_device() {
        let (_f, mut o) = orch(AllocPolicy::LocalFirst { threshold: 80 });
        assert_eq!(o.choose(HostId(0), DeviceKind::Nic).unwrap(), DeviceId(0));
        assert_eq!(o.choose(HostId(1), DeviceKind::Nic).unwrap(), DeviceId(1));
    }

    #[test]
    fn local_first_spills_over_when_hot() {
        let (_f, mut o) = orch(AllocPolicy::LocalFirst { threshold: 80 });
        o.set_load(DeviceId(0), 95);
        // Host 0's local NIC is above threshold: go least-utilized.
        assert_eq!(o.choose(HostId(0), DeviceKind::Nic).unwrap(), DeviceId(1));
    }

    #[test]
    fn host_without_local_device_gets_least_utilized() {
        let (_f, mut o) = orch(AllocPolicy::LocalFirst { threshold: 80 });
        o.set_load(DeviceId(0), 50);
        o.set_load(DeviceId(1), 10);
        assert_eq!(o.choose(HostId(2), DeviceKind::Nic).unwrap(), DeviceId(1));
    }

    #[test]
    fn no_live_device_is_an_error() {
        let (mut f, mut o) = orch(AllocPolicy::LeastUtilized);
        o.on_failure(&mut f, DeviceId(0));
        o.on_failure(&mut f, DeviceId(1));
        assert!(matches!(
            o.choose(HostId(0), DeviceKind::Nic),
            Err(PoolError::NoDevice(DeviceKind::Nic))
        ));
    }

    #[test]
    fn allocation_tracks_users_and_assignment() {
        let (mut f, mut o) = orch(AllocPolicy::LeastUtilized);
        let dev = o
            .allocate(&mut f, HostId(2), DeviceKind::Nic)
            .expect("alloc");
        assert_eq!(o.assignment(HostId(2), DeviceKind::Nic), Some(dev));
        assert!(o.device(dev).unwrap().users.contains(&HostId(2)));
    }

    #[test]
    fn reallocation_unlinks_previous_device() {
        let (mut f, mut o) = orch(AllocPolicy::LeastUtilized);
        let d1 = o
            .allocate(&mut f, HostId(2), DeviceKind::Nic)
            .expect("alloc");
        // Tilt loads so the other device is picked next time.
        o.set_load(d1, 90);
        let d2 = o
            .allocate(&mut f, HostId(2), DeviceKind::Nic)
            .expect("realloc");
        assert_ne!(d1, d2);
        assert!(!o.device(d1).unwrap().users.contains(&HostId(2)));
        assert!(o.device(d2).unwrap().users.contains(&HostId(2)));
    }

    #[test]
    fn failure_moves_users_to_survivor() {
        let (mut f, mut o) = orch(AllocPolicy::LeastUtilized);
        o.allocate(&mut f, HostId(2), DeviceKind::Nic)
            .expect("alloc");
        o.allocate(&mut f, HostId(3), DeviceKind::Nic)
            .expect("alloc");
        // Both land on different devices (least-utilized + estimate);
        // fail device 0 and everyone must end up on device 1.
        o.on_failure(&mut f, DeviceId(0));
        assert!(!o.device(DeviceId(0)).unwrap().up);
        for h in [HostId(2), HostId(3)] {
            assert_eq!(o.assignment(h, DeviceKind::Nic), Some(DeviceId(1)));
        }
        assert!(!o.failover_log.is_empty());
    }

    #[test]
    fn duplicate_failure_reports_are_idempotent() {
        let (mut f, mut o) = orch(AllocPolicy::LeastUtilized);
        o.allocate(&mut f, HostId(2), DeviceKind::Nic)
            .expect("alloc");
        o.on_failure(&mut f, DeviceId(0));
        let log_len = o.failover_log.len();
        o.on_failure(&mut f, DeviceId(0));
        assert_eq!(o.failover_log.len(), log_len);
    }

    #[test]
    fn repair_rejoins_candidate_set() {
        let (mut f, mut o) = orch(AllocPolicy::LeastUtilized);
        o.on_failure(&mut f, DeviceId(0));
        o.on_repair(DeviceId(0));
        assert!(o.device(DeviceId(0)).unwrap().up);
        // Fresh device has load 0: it becomes the least-utilized pick.
        o.set_load(DeviceId(1), 40);
        assert_eq!(o.choose(HostId(2), DeviceKind::Nic).unwrap(), DeviceId(0));
    }

    #[test]
    fn random_policy_spreads_choices() {
        let (_f, mut o) = orch(AllocPolicy::Random);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(o.choose(HostId(2), DeviceKind::Nic).unwrap());
        }
        assert_eq!(seen.len(), 2, "both NICs should be chosen eventually");
    }

    #[test]
    fn balance_moves_user_off_hot_device() {
        let (mut f, mut o) = orch(AllocPolicy::LeastUtilized);
        o.allocate(&mut f, HostId(2), DeviceKind::Nic)
            .expect("alloc");
        // Find where host 2 landed and make it hot.
        let hot = o.assignment(HostId(2), DeviceKind::Nic).unwrap();
        let cool = if hot == DeviceId(0) {
            DeviceId(1)
        } else {
            DeviceId(0)
        };
        o.set_load(hot, 90);
        o.set_load(cool, 5);
        let moved = o.balance(&mut f, 30);
        assert_eq!(moved, 1);
        assert_eq!(o.assignment(HostId(2), DeviceKind::Nic), Some(cool));
    }

    #[test]
    fn balance_respects_spread_threshold() {
        let (mut f, mut o) = orch(AllocPolicy::LeastUtilized);
        o.allocate(&mut f, HostId(2), DeviceKind::Nic)
            .expect("alloc");
        o.set_load(DeviceId(0), 50);
        o.set_load(DeviceId(1), 45);
        assert_eq!(o.balance(&mut f, 30), 0, "spread 5 < threshold 30");
    }

    fn two_domain_fabric() -> Fabric {
        // 4 hosts, 4 MHDs round-robined over 2 domains, full links.
        Fabric::new(PodConfig::new(4, 4, 4).with_domains(2))
    }

    #[test]
    fn replica_domains_are_distinct() {
        let f = two_domain_fabric();
        let o = Orchestrator::new(HostId(0), AllocPolicy::LeastUtilized, 1);
        let doms = o
            .choose_replica_domains(&f, HostId(0), 4096, 2)
            .expect("choose");
        assert_eq!(doms.len(), 2);
        assert_ne!(doms[0], doms[1], "replicas must not share a domain");
    }

    #[test]
    fn replica_placement_leads_with_home_domain() {
        let f = two_domain_fabric();
        // Host 1's first link lands on MHD 1 → domain 1.
        let local = Orchestrator::new(HostId(0), AllocPolicy::LocalFirst { threshold: 80 }, 1);
        let doms = local
            .choose_replica_domains(&f, HostId(1), 4096, 2)
            .expect("choose");
        assert_eq!(doms[0], cxl_fabric::DomainId(1), "home domain leads");
        // Without locality the tie breaks by id.
        let lu = Orchestrator::new(HostId(0), AllocPolicy::LeastUtilized, 1);
        let doms = lu
            .choose_replica_domains(&f, HostId(1), 4096, 2)
            .expect("choose");
        assert_eq!(doms[0], cxl_fabric::DomainId(0));
    }

    #[test]
    fn replica_placement_rejects_when_domains_scarce() {
        let mut f = two_domain_fabric();
        let o = Orchestrator::new(HostId(0), AllocPolicy::LeastUtilized, 1);
        assert!(matches!(
            o.choose_replica_domains(&f, HostId(0), 4096, 3),
            Err(PoolError::Fabric(FabricError::InsufficientDomains {
                wanted: 3,
                available: 2,
            }))
        ));
        // A downed domain leaves the candidate set.
        f.topology_mut().fail_domain(cxl_fabric::DomainId(0));
        assert!(o.choose_replica_domains(&f, HostId(0), 4096, 2).is_err());
        let doms = o
            .choose_replica_domains(&f, HostId(0), 4096, 1)
            .expect("one copy still fits");
        assert_eq!(doms, vec![cxl_fabric::DomainId(1)]);
    }

    #[test]
    fn place_replicas_allocates_pinned_copies() {
        let mut f = two_domain_fabric();
        let o = Orchestrator::new(HostId(0), AllocPolicy::LocalFirst { threshold: 80 }, 1);
        let rs = o.place_replicas(&mut f, HostId(0), 8192, 2).expect("place");
        let doms = rs.domains();
        assert_eq!(doms.len(), 2);
        assert_ne!(doms[0], doms[1]);
        for r in rs.replicas() {
            let seg = f.segment(r.seg).expect("live");
            assert!(seg
                .ways()
                .iter()
                .all(|&w| f.topology().domain_of(w) == r.domain));
        }
    }

    #[test]
    fn devices_of_filters_by_kind() {
        let (_f, mut o) = orch(AllocPolicy::Random);
        o.register(DeviceId(9), DeviceKind::Ssd, HostId(0));
        assert_eq!(
            o.devices_of(DeviceKind::Nic),
            vec![DeviceId(0), DeviceId(1)]
        );
        assert_eq!(o.devices_of(DeviceKind::Ssd), vec![DeviceId(9)]);
        assert!(o.devices_of(DeviceKind::Accel).is_empty());
    }
}
