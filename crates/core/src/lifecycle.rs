//! Tenant lifecycle: provisioning, live migration, departure (§4.2).
//!
//! The paper's orchestrator migrates workloads on failure or overload.
//! What makes that cheap in a CXL pod is the same property that makes
//! connection migration cheap in [`crate::migration`]: everything a
//! vdev needs — rings, I/O buffers, tenant state — already lives in
//! pool memory visible to every host. Live-migrating a *tenant* is
//! therefore a control-plane operation: quiesce, checkpoint the state
//! block, flip segment ownership through the allocator, rebind every
//! affected host via one orchestrator `Assign` each, resume.
//!
//! This module generalizes [`crate::migration::Connection::migrate`]'s
//! quiesce/rebind/resume flow from one NIC connection to a whole
//! tenant across NIC/SSD/accel vdevs, and owns blackout accounting for
//! both: every migration window lands in [`LifecycleStats`], in the
//! `lifecycle/blackout_ns` metric histogram, and on the flight
//! recorder as a `lifecycle/migrate` span.
//!
//! Departure matters as much as arrival: [`TenantState::release`]
//! returns every tenant-owned segment (state block and replica set)
//! through `Fabric::free_segment`, which clears the coherence
//! auditor's per-line shadow state across all domains — so a later
//! tenant reusing those addresses can never alias the departed
//! tenant's history.

use cxl_fabric::{HostId, SegmentId};
use pcie_sim::DeviceId;
use simkit::stats::{Histogram, Summary};
use simkit::Nanos;

use crate::pod::PodSim;
use crate::striping::ReplicaSet;
use crate::vdev::{DeviceKind, PoolError};

/// Copy granularity for re-homing a tenant's state segment.
const COPY_CHUNK: usize = 4096;

/// How long to drain the control plane before taking the quiesce
/// point, so no forwarded completion for the tenant is in flight.
const QUIESCE_DRAIN: Nanos = Nanos(2_000);

/// Pod-level lifecycle counters and distributions, snapshotted into
/// [`crate::telemetry::PodReport`].
#[derive(Debug, Default)]
pub struct LifecycleStats {
    /// Whole-tenant migrations completed.
    pub tenant_migrations: u64,
    /// Migration windows currently open (sampled as the
    /// `lifecycle/in_flight_migrations` gauge).
    pub in_flight: u64,
    /// Blackout distribution (ns) across every migration window —
    /// whole-tenant migrations and single-connection migrations alike,
    /// since both flow through `PodSim::record_migration_window`.
    pub blackout: Histogram,
}

impl LifecycleStats {
    /// Reduced blackout distribution, None before the first migration.
    pub fn blackout_summary(&self) -> Option<Summary> {
        (self.blackout.count() > 0).then(|| self.blackout.summary())
    }
}

/// The outcome of one whole-tenant migration.
#[derive(Clone, Debug)]
pub struct TenantMigrationReport {
    /// The migrated tenant's tag.
    pub tenant: u16,
    /// Device class that was rebound.
    pub kind: DeviceKind,
    /// Device every tenant host now uses.
    pub to: DeviceId,
    /// `(host, previous device)` for each rebound host.
    pub moved: Vec<(HostId, DeviceId)>,
    /// When the tenant's state checkpoint became pod-visible.
    pub quiesced_at: Nanos,
    /// When the last rebind landed and the state copy settled.
    pub resumed_at: Nanos,
    /// The blackout window.
    pub blackout: Nanos,
}

/// A tenant's pool-resident footprint: a state block any host can take
/// over, plus an optional domain-replicated data region.
#[derive(Debug)]
pub struct TenantState {
    /// Tag carried in the state block (report/debug identity).
    pub tenant: u16,
    /// Hosts the tenant issues from.
    pub hosts: Vec<HostId>,
    /// Domain-replicated tenant data, if provisioned with copies.
    pub replicas: Option<ReplicaSet>,
    seg: SegmentId,
    base: u64,
    len: u64,
    epoch: u32,
}

/// Provisions a tenant: allocates its shared state segment (owned by
/// `hosts`), optionally places `copies` replicas of the same length
/// under the orchestrator's domain-spreading policy, and publishes the
/// initial state block.
pub fn provision(
    pod: &mut PodSim,
    tenant: u16,
    hosts: &[HostId],
    state_len: u64,
    copies: usize,
) -> Result<TenantState, PoolError> {
    assert!(!hosts.is_empty(), "a tenant needs at least one host");
    let len = state_len.max(64);
    let seg = pod.fabric.alloc_shared(hosts, len)?;
    let (seg_id, base) = (seg.id(), seg.base());
    let replicas = if copies > 0 {
        match pod
            .orch
            .place_replicas(&mut pod.fabric, hosts[0], len, copies)
        {
            Ok(rs) => Some(rs),
            Err(e) => {
                let _ = pod.fabric.free_segment(seg_id);
                return Err(e);
            }
        }
    } else {
        None
    };
    let mut state = TenantState {
        tenant,
        hosts: hosts.to_vec(),
        replicas,
        seg: seg_id,
        base,
        len,
        epoch: 0,
    };
    state.checkpoint(pod)?;
    Ok(state)
}

/// Rebinds `host`'s `kind` binding to device `to` and waits for the
/// orchestrator's `Assign` to land on the host's agent. This is the
/// rebind primitive both [`crate::migration::Connection::migrate`] and
/// [`migrate_tenant`] delegate to; `quiesced_at` is the caller's
/// quiesce point (the orchestrator clock is advanced to it so the
/// `Assign` is ordered after the checkpoint).
pub fn rebind(
    pod: &mut PodSim,
    host: HostId,
    kind: DeviceKind,
    to: DeviceId,
    quiesced_at: Nanos,
) -> Result<(), PoolError> {
    pod.orch.advance_clock(quiesced_at);
    pod.orch
        .allocate_specific(&mut pod.fabric, host, kind, to)?;
    // Let the Assign land.
    let mut waited = Nanos::ZERO;
    while pod.binding(host, kind) != Some(to) {
        pod.run_control(Nanos::from_micros(5));
        waited += Nanos::from_micros(5);
        if waited > Nanos::from_millis(10) {
            return Err(PoolError::Timeout { op: 0 });
        }
    }
    Ok(())
}

/// Live-migrates every `kind` binding of `state`'s hosts to device
/// `to`: drain, checkpoint (the quiesce point), re-home the state
/// segment through the free/realloc path, rebind each host, resume.
/// Returns `Ok(None)` when every host already uses `to` (no blackout
/// is charged). The window is recorded pod-wide — stats histogram,
/// `lifecycle/blackout_ns` metric, `lifecycle/migrate` trace span.
pub fn migrate_tenant(
    pod: &mut PodSim,
    state: &mut TenantState,
    kind: DeviceKind,
    to: DeviceId,
) -> Result<Option<TenantMigrationReport>, PoolError> {
    let moved: Vec<(HostId, DeviceId)> = state
        .hosts
        .iter()
        .filter_map(|&h| match pod.binding(h, kind) {
            Some(d) if d != to => Some((h, d)),
            _ => None,
        })
        .collect();
    if moved.is_empty() {
        return Ok(None);
    }
    pod.lifecycle.in_flight += 1;
    let r = migrate_inner(pod, state, kind, to, &moved);
    pod.lifecycle.in_flight -= 1;
    r.map(Some)
}

fn migrate_inner(
    pod: &mut PodSim,
    state: &mut TenantState,
    kind: DeviceKind,
    to: DeviceId,
    moved: &[(HostId, DeviceId)],
) -> Result<TenantMigrationReport, PoolError> {
    let op = pod.take_op_id();
    // Quiesce: the datapath calls are synchronous, so draining the
    // control plane leaves no forwarded completion in flight; the
    // checkpoint's pod-wide visibility time is the quiesce point.
    pod.run_control(QUIESCE_DRAIN);
    let quiesced_at = state.checkpoint(pod)?;
    // Ownership flip: the state segment is re-homed through
    // free_segment/realloc so the auditor's shadow state follows the
    // allocator — the old lines are cleared, never aliased.
    let rehomed_at = state.rehome(pod, quiesced_at)?;
    for &(h, _) in moved {
        rebind(pod, h, kind, to, quiesced_at)?;
    }
    let mut resumed_at = rehomed_at;
    for &(h, _) in moved {
        resumed_at = resumed_at.max(pod.agents[h.0 as usize].clock());
    }
    pod.record_migration_window(op, quiesced_at, resumed_at);
    pod.lifecycle.tenant_migrations += 1;
    Ok(TenantMigrationReport {
        tenant: state.tenant,
        kind,
        to,
        moved: moved.to_vec(),
        quiesced_at,
        resumed_at,
        blackout: resumed_at.saturating_sub(quiesced_at),
    })
}

impl TenantState {
    /// Pool address of the tenant's state block (pod-visible).
    pub fn state_addr(&self) -> u64 {
        self.base
    }

    /// Backing segment of the state block.
    pub fn state_seg(&self) -> SegmentId {
        self.seg
    }

    /// Writes the tenant's state block (tag, tenant id, epoch) to pool
    /// memory with non-temporal stores, so any host could take over.
    /// Returns the pod-wide visibility time.
    pub fn checkpoint(&mut self, pod: &mut PodSim) -> Result<Nanos, PoolError> {
        self.epoch += 1;
        let mut block = [0u8; 64];
        block[0..4].copy_from_slice(b"TNNT");
        block[4..6].copy_from_slice(&self.tenant.to_le_bytes());
        block[8..12].copy_from_slice(&self.epoch.to_le_bytes());
        let h = self.hosts[0];
        let now = pod.agents[h.0 as usize].clock();
        let t = pod.fabric.nt_store(now, h, self.base, &block)?;
        pod.agents[h.0 as usize].advance_clock(t);
        Ok(t)
    }

    /// Re-homes the state segment: fresh allocation, coherent copy,
    /// free of the old segment (which clears its audit shadow state).
    fn rehome(&mut self, pod: &mut PodSim, now: Nanos) -> Result<Nanos, PoolError> {
        let fresh = pod.fabric.alloc_shared(&self.hosts, self.len)?;
        let (new_seg, new_base) = (fresh.id(), fresh.base());
        let h = self.hosts[0];
        let mut t = now;
        let mut off = 0u64;
        let mut buf = vec![0u8; COPY_CHUNK];
        while off < self.len {
            let n = ((self.len - off) as usize).min(COPY_CHUNK);
            // simlint: allow(unwrap-in-datapath) -- n is min-clamped to COPY_CHUNK == buf.len()
            t = pod.fabric.load(t, h, self.base + off, &mut buf[..n])?;
            // simlint: allow(unwrap-in-datapath) -- n is min-clamped to COPY_CHUNK == buf.len()
            t = pod.fabric.nt_store(t, h, new_base + off, &buf[..n])?;
            off += n as u64;
        }
        pod.agents[h.0 as usize].advance_clock(t);
        let _ = pod.fabric.free_segment(self.seg);
        self.seg = new_seg;
        self.base = new_base;
        Ok(t)
    }

    /// Departure: returns every tenant-owned segment to the pool. Both
    /// the state block and each replica copy go through
    /// `Fabric::free_segment`, so the auditor forgets their per-line
    /// history across all domains before any address reuse.
    pub fn release(self, pod: &mut PodSim) {
        let _ = pod.fabric.free_segment(self.seg);
        if let Some(rs) = self.replicas {
            rs.free(&mut pod.fabric);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::PodParams;
    use crate::telemetry;

    fn pod() -> PodSim {
        let mut params = PodParams::new(4, 2);
        params.ssd_hosts = vec![0, 1];
        params.accel_hosts = vec![0, 1];
        PodSim::new(params)
    }

    fn other_dev(pod: &PodSim, host: HostId, kind: DeviceKind) -> DeviceId {
        let from = pod.binding(host, kind).expect("bound");
        pod.orch
            .devices_of(kind)
            .into_iter()
            .find(|&d| d != from)
            .expect("second device")
    }

    #[test]
    fn migrate_tenant_rebinds_all_hosts_and_records_blackout() {
        let mut pod = pod();
        let hosts = [HostId(2), HostId(3)];
        let mut st = provision(&mut pod, 7, &hosts, 4096, 0).expect("provision");
        let to = other_dev(&pod, HostId(2), DeviceKind::Nic);
        let rep = migrate_tenant(&mut pod, &mut st, DeviceKind::Nic, to)
            .expect("migrate")
            .expect("some host moved");
        assert_eq!(rep.tenant, 7);
        assert!(!rep.moved.is_empty());
        for &h in &hosts {
            assert_eq!(pod.binding(h, DeviceKind::Nic), Some(to));
        }
        assert!(
            rep.blackout < Nanos::from_millis(1),
            "blackout {}",
            rep.blackout
        );
        assert_eq!(pod.lifecycle.tenant_migrations, 1);
        assert_eq!(pod.lifecycle.in_flight, 0);
        let s = pod.lifecycle.blackout_summary().expect("recorded");
        assert_eq!(s.count, 1);
        // A second call is a no-op: everyone already uses `to`.
        assert!(migrate_tenant(&mut pod, &mut st, DeviceKind::Nic, to)
            .expect("ok")
            .is_none());
        assert_eq!(pod.lifecycle.tenant_migrations, 1);
        st.release(&mut pod);
    }

    #[test]
    fn migrate_tenant_covers_ssd_and_accel_kinds() {
        let mut pod = pod();
        let mut st = provision(&mut pod, 1, &[HostId(3)], 256, 0).expect("provision");
        for kind in [DeviceKind::Ssd, DeviceKind::Accel] {
            let to = other_dev(&pod, HostId(3), kind);
            let rep = migrate_tenant(&mut pod, &mut st, kind, to)
                .expect("migrate")
                .expect("moved");
            assert_eq!(pod.binding(HostId(3), kind), Some(to));
            assert_eq!(rep.kind, kind);
        }
        assert_eq!(pod.lifecycle.tenant_migrations, 2);
        st.release(&mut pod);
    }

    #[test]
    fn migration_rehomes_state_segment_and_departure_reclaims_capacity() {
        let mut pod = pod();
        let free0 = pod.fabric.free_capacity();
        let mut st = provision(&mut pod, 3, &[HostId(2)], 4096, 2).expect("provision");
        assert!(st.replicas.is_some());
        assert!(pod.fabric.free_capacity() < free0);
        let seg_before = st.state_seg();
        let to = other_dev(&pod, HostId(2), DeviceKind::Nic);
        migrate_tenant(&mut pod, &mut st, DeviceKind::Nic, to)
            .expect("migrate")
            .expect("moved");
        assert_ne!(st.state_seg(), seg_before, "state segment was re-homed");
        st.release(&mut pod);
        assert_eq!(
            pod.fabric.free_capacity(),
            free0,
            "departure returns every tenant segment"
        );
    }

    #[test]
    fn state_block_is_visible_pod_wide_after_migration() {
        let mut pod = pod();
        let mut st = provision(&mut pod, 42, &[HostId(0), HostId(2)], 1024, 0).expect("provision");
        let to = other_dev(&pod, HostId(0), DeviceKind::Nic);
        let rep = migrate_tenant(&mut pod, &mut st, DeviceKind::Nic, to)
            .expect("migrate")
            .expect("moved");
        // Another owner reads the migrated state block coherently from
        // the re-homed segment.
        let (block, _) = pod
            .read_rx_payload(HostId(2), st.state_addr(), 16, rep.resumed_at)
            .expect("read");
        assert_eq!(&block[0..4], b"TNNT");
        assert_eq!(u16::from_le_bytes(block[4..6].try_into().unwrap()), 42);
        st.release(&mut pod);
    }

    #[test]
    fn blackout_lands_in_pod_report() {
        let mut pod = pod();
        let mut st = provision(&mut pod, 9, &[HostId(3)], 256, 0).expect("provision");
        let to = other_dev(&pod, HostId(3), DeviceKind::Nic);
        migrate_tenant(&mut pod, &mut st, DeviceKind::Nic, to)
            .expect("migrate")
            .expect("moved");
        st.release(&mut pod);
        let r = telemetry::snapshot(&pod);
        assert_eq!(r.tenant_migrations, 1);
        let b = r.blackout.expect("blackout summary present");
        assert_eq!(b.count, 1);
        assert!(r.to_string().contains("lifecycle:"));
    }
}
