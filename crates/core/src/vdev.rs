//! Virtual device identity and pool-level errors.

use core::fmt;

use cxl_fabric::FabricError;
use pcie_sim::{DeviceError, DeviceId};
use serde::Serialize;

/// The device classes the pool manages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum DeviceKind {
    /// Network interface.
    Nic,
    /// NVMe SSD.
    Ssd,
    /// Offload accelerator.
    Accel,
}

impl DeviceKind {
    /// Wire discriminant used in [`crate::proto::Msg::Assign`].
    pub fn as_u8(self) -> u8 {
        match self {
            DeviceKind::Nic => 1,
            DeviceKind::Ssd => 2,
            DeviceKind::Accel => 3,
        }
    }

    /// Parses the wire discriminant.
    pub fn from_u8(v: u8) -> Option<DeviceKind> {
        match v {
            1 => Some(DeviceKind::Nic),
            2 => Some(DeviceKind::Ssd),
            3 => Some(DeviceKind::Accel),
            _ => None,
        }
    }
}

/// A host's handle onto a pooled device of one kind.
///
/// The binding to a physical device lives in the host's pooling agent
/// (updated by orchestrator `Assign` messages); this handle is just the
/// (host, kind) coordinate used when invoking [`crate::pod::PodSim`]
/// operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct VirtualDevice {
    /// The host that uses the device.
    pub owner: cxl_fabric::HostId,
    /// The device class.
    pub kind: DeviceKind,
}

/// Errors surfaced by pool operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// No device of the requested kind is assigned to the host.
    NotAssigned(DeviceKind),
    /// No live device of the requested kind exists in the pod.
    NoDevice(DeviceKind),
    /// A forwarded operation did not complete before its deadline.
    Timeout {
        /// The operation id that timed out.
        op: u64,
    },
    /// The remote agent reported a device failure for this operation.
    RemoteFailed {
        /// The operation id.
        op: u64,
        /// The device that failed.
        dev: DeviceId,
    },
    /// A local device error.
    Device(DeviceError),
    /// A fabric error (buffer placement, path failure…).
    Fabric(FabricError),
    /// The shared-memory channel to the target host is jammed.
    ChannelBlocked,
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::NotAssigned(k) => write!(f, "no {k:?} assigned to this host"),
            PoolError::NoDevice(k) => write!(f, "no live {k:?} in the pod"),
            PoolError::Timeout { op } => write!(f, "operation {op} timed out"),
            PoolError::RemoteFailed { op, dev } => {
                write!(f, "operation {op} failed on remote device {dev:?}")
            }
            PoolError::Device(e) => write!(f, "device error: {e}"),
            PoolError::Fabric(e) => write!(f, "fabric error: {e}"),
            PoolError::ChannelBlocked => write!(f, "control channel is full"),
        }
    }
}

impl std::error::Error for PoolError {}

impl From<DeviceError> for PoolError {
    fn from(e: DeviceError) -> Self {
        PoolError::Device(e)
    }
}

impl From<FabricError> for PoolError {
    fn from(e: FabricError) -> Self {
        PoolError::Fabric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_discriminant_roundtrips() {
        for k in [DeviceKind::Nic, DeviceKind::Ssd, DeviceKind::Accel] {
            assert_eq!(DeviceKind::from_u8(k.as_u8()), Some(k));
        }
        assert_eq!(DeviceKind::from_u8(0), None);
        assert_eq!(DeviceKind::from_u8(42), None);
    }

    #[test]
    fn error_display_is_informative() {
        let e = PoolError::Timeout { op: 9 };
        assert!(e.to_string().contains('9'));
        let e = PoolError::NotAssigned(DeviceKind::Nic);
        assert!(e.to_string().contains("Nic"));
    }
}
