//! Pod-wide telemetry: one snapshot of every counter that matters,
//! printable as the kind of report a pooling operator would watch.

use core::fmt;

use cxl_fabric::ViolationCounts;
use pcie_sim::DeviceId;
use simkit::stats::Summary;

use crate::pod::PodSim;
use crate::vdev::DeviceKind;

/// Per-device counters in a report.
#[derive(Clone, Debug)]
pub struct DeviceReport {
    /// The device.
    pub dev: DeviceId,
    /// Its class.
    pub kind: DeviceKind,
    /// Attach host index.
    pub attach: u16,
    /// Liveness per the orchestrator.
    pub up: bool,
    /// Last load the orchestrator heard for this device (0-100).
    pub load: u8,
    /// Hosts currently assigned.
    pub users: usize,
    /// Operations completed (TX frames / SSD commands / accel jobs).
    pub ops: u64,
    /// Bytes moved through the device.
    pub bytes: u64,
}

/// Coherence-audit tallies carried by a report (present only when
/// auditing was enabled on the pod).
#[derive(Clone, Copy, Debug)]
pub struct AuditSummary {
    /// Per-kind violation counters, including `concurrent_conflicts`
    /// from the vector-clock race detector.
    pub counts: ViolationCounts,
    /// Pool operations that passed through the audit layer.
    pub ops_audited: u64,
}

/// One row of per-stage latency attribution from the flight recorder.
#[derive(Clone, Copy, Debug)]
pub struct StageReport {
    /// Datapath stage name, e.g. `"chan/send"`.
    pub stage: &'static str,
    /// Device-kind tag the stage latencies are attributed to.
    pub kind: &'static str,
    /// Latency distribution (nanoseconds).
    pub latency: Summary,
}

/// One sampled timeline from the metrics plane, reduced to a report
/// row: series identity, point count, final value and a sparkline of
/// the sampled values.
#[derive(Clone, Debug)]
pub struct MetricReport {
    /// Metric name plus label suffix, e.g. `"domain/free_bytes{domain=1}"`.
    pub series: String,
    /// Sampled points in the timeline.
    pub points: usize,
    /// Value at the last sampling tick.
    pub last: f64,
    /// Unicode sparkline over the sampled values (empty when the
    /// series never got a tick).
    pub spark: String,
}

/// A full pod snapshot.
#[derive(Clone, Debug)]
pub struct PodReport {
    /// Per-agent: (host, forwarded ops served, device failures seen,
    /// assignment updates applied).
    pub agents: Vec<(u16, u64, u64, u64)>,
    /// Per-device counters.
    pub devices: Vec<DeviceReport>,
    /// Failovers the orchestrator performed.
    pub failovers: usize,
    /// Load-balancing migrations performed.
    pub migrations: u64,
    /// Whole-tenant lifecycle migrations performed.
    pub tenant_migrations: u64,
    /// Migration blackout distribution (ns) across every migration
    /// window — tenant and connection migrations alike; None before
    /// the first migration.
    pub blackout: Option<Summary>,
    /// Fabric: total pool loads / visible writes (ops).
    pub pool_loads: u64,
    /// Fabric: NT stores + flush write-backs + DMA writes.
    pub pool_writes: u64,
    /// Fabric: bytes read from the pool.
    pub pool_bytes_read: u64,
    /// Fabric: bytes written to the pool.
    pub pool_bytes_written: u64,
    /// Coherence-audit tallies (None when auditing is off).
    pub audit: Option<AuditSummary>,
    /// Per-stage latency attribution from the flight recorder (empty
    /// when tracing is off).
    pub stages: Vec<StageReport>,
    /// Trace events dropped because the recorder's ring was full.
    pub trace_dropped: u64,
    /// Sampled metric timelines (empty when the metrics plane is off),
    /// sorted by series name then labels.
    pub metrics: Vec<MetricReport>,
    /// Metric samples dropped because the sample ring was full.
    pub metrics_dropped: u64,
}

/// Builds a report from the pod's current counters.
pub fn snapshot(pod: &PodSim) -> PodReport {
    let agents = pod
        .agents
        .iter()
        .map(|a| {
            let s = a.stats();
            (a.host.0, s.served, s.failures_seen, s.assigns)
        })
        .collect();

    let mut devices = Vec::new();
    for kind in [DeviceKind::Nic, DeviceKind::Ssd, DeviceKind::Accel] {
        for dev in pod.orch.devices_of(kind) {
            let info = pod.orch.device(dev).expect("registered");
            let attach = info.attach.0;
            let agent = &pod.agents[attach as usize];
            let (ops, bytes) = match kind {
                DeviceKind::Nic => agent
                    .nics
                    .get(&dev)
                    .map(|n| {
                        let s = n.stats();
                        (s.tx_frames + s.rx_frames, s.tx_bytes + s.rx_bytes)
                    })
                    .unwrap_or((0, 0)),
                DeviceKind::Ssd => agent
                    .ssds
                    .get(&dev)
                    .map(|s| {
                        let st = s.stats();
                        (st.reads + st.writes, st.bytes_read + st.bytes_written)
                    })
                    .unwrap_or((0, 0)),
                DeviceKind::Accel => agent
                    .accels
                    .get(&dev)
                    .map(|a| {
                        let st = a.stats();
                        (st.jobs, st.bytes)
                    })
                    .unwrap_or((0, 0)),
            };
            devices.push(DeviceReport {
                dev,
                kind,
                attach,
                up: info.up,
                load: info.load,
                users: info.users.len(),
                ops,
                bytes,
            });
        }
    }

    let audit = pod.fabric.audit_report().map(|r| AuditSummary {
        counts: r.counts,
        ops_audited: r.ops_audited,
    });
    let (stages, trace_dropped) = match pod.trace() {
        Some(tr) => {
            let mut stages: Vec<StageReport> = tr
                .stage_summaries()
                .into_iter()
                .map(|(stage, kind, latency)| StageReport {
                    stage,
                    kind: simkit::trace::kind_name(kind),
                    latency,
                })
                .collect();
            // Sort on the rendered key so the printed table (and any
            // serialization of it) is byte-stable regardless of the
            // recorder's internal keying.
            stages.sort_by(|a, b| (a.stage, a.kind).cmp(&(b.stage, b.kind)));
            (stages, tr.dropped())
        }
        None => (Vec::new(), 0),
    };

    // `MetricsRecorder::series` already sorts by (name, labels); carry
    // that order into the report rows.
    let (metrics, metrics_dropped) = match pod.metrics() {
        Some(rec) => (
            rec.series()
                .into_iter()
                .map(|s| {
                    let values: Vec<f64> = s.points.iter().map(|&(_, v)| v).collect();
                    MetricReport {
                        series: format!("{}{}", s.name, s.labels.suffix()),
                        points: values.len(),
                        last: values.last().copied().unwrap_or(0.0),
                        spark: sparkline(&values, 32),
                    }
                })
                .collect(),
            rec.dropped(),
        ),
        None => (Vec::new(), 0),
    };

    let f = pod.fabric.stats();
    PodReport {
        agents,
        devices,
        failovers: pod.orch.failover_log.len(),
        migrations: pod.orch.migrations,
        tenant_migrations: pod.lifecycle.tenant_migrations,
        blackout: pod.lifecycle.blackout_summary(),
        pool_loads: f.loads + f.dma_reads,
        pool_writes: f.nt_stores + f.flushes + f.dma_writes,
        pool_bytes_read: f.bytes_read,
        pool_bytes_written: f.bytes_written,
        audit,
        stages,
        trace_dropped,
        metrics,
        metrics_dropped,
    }
}

/// Renders `values` as a fixed-alphabet Unicode sparkline, averaging
/// down to at most `width` buckets. Deterministic: depends only on the
/// input values.
fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let buckets = width.min(values.len());
    let mut reduced = Vec::with_capacity(buckets);
    for b in 0..buckets {
        let lo = b * values.len() / buckets;
        let hi = ((b + 1) * values.len() / buckets).max(lo + 1);
        let slice = &values[lo..hi];
        reduced.push(slice.iter().sum::<f64>() / slice.len() as f64);
    }
    let min = reduced.iter().copied().fold(f64::INFINITY, f64::min);
    let max = reduced.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    reduced
        .iter()
        .map(|&v| {
            if !span.is_finite() || span <= 0.0 {
                BARS[0]
            } else {
                let idx = ((v - min) / span * 7.0).round() as usize;
                BARS[idx.min(7)]
            }
        })
        .collect()
}

impl fmt::Display for PodReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pod report")?;
        writeln!(
            f,
            "  pool: {} reads / {} writes ({} B in, {} B out)",
            self.pool_loads, self.pool_writes, self.pool_bytes_read, self.pool_bytes_written
        )?;
        writeln!(
            f,
            "  control plane: {} failovers, {} migrations",
            self.failovers, self.migrations
        )?;
        if let Some(b) = &self.blackout {
            writeln!(
                f,
                "  lifecycle: {} tenant migrations, blackout ns n={} p50={} p99={} max={}",
                self.tenant_migrations, b.count, b.p50, b.p99, b.max
            )?;
        }
        if let Some(a) = &self.audit {
            let c = &a.counts;
            writeln!(
                f,
                "  audit: {} violations over {} pool ops \
                 (stale-read {}, torn-read {}, lost-write {}, ww-conflict {}, \
                 unflushed {}, concurrent-conflict {})",
                c.total(),
                a.ops_audited,
                c.stale_reads,
                c.torn_reads,
                c.lost_writes,
                c.ww_conflicts,
                c.unflushed_writes,
                c.concurrent_conflicts
            )?;
        }
        if !self.stages.is_empty() {
            writeln!(f, "  stage latency (ns):")?;
            for s in &self.stages {
                writeln!(
                    f,
                    "    {:<16} {:<5} n={:<7} p50={:<9} p99={:<9} max={}",
                    s.stage, s.kind, s.latency.count, s.latency.p50, s.latency.p99, s.latency.max
                )?;
            }
        }
        if self.trace_dropped > 0 {
            writeln!(
                f,
                "  trace: {} events dropped (ring full)",
                self.trace_dropped
            )?;
        }
        if !self.metrics.is_empty() {
            writeln!(f, "  metrics (sampled timelines):")?;
            for m in &self.metrics {
                writeln!(
                    f,
                    "    {:<36} n={:<6} last={:<14} {}",
                    m.series,
                    m.points,
                    simkit::metrics::fmt_value(m.last),
                    m.spark
                )?;
            }
        }
        if self.metrics_dropped > 0 {
            writeln!(
                f,
                "  metrics: {} samples dropped (ring full)",
                self.metrics_dropped
            )?;
        }
        for (host, served, failures, assigns) in &self.agents {
            writeln!(
                f,
                "  agent[{host}]: served {served} forwarded ops, saw {failures} device failures, applied {assigns} assignments"
            )?;
        }
        for d in &self.devices {
            writeln!(
                f,
                "  {:?} {:?} @host{} {}: {} users, {} ops, {} bytes, load {}%",
                d.kind,
                d.dev,
                d.attach,
                if d.up { "up" } else { "DOWN" },
                d.users,
                d.ops,
                d.bytes,
                d.load
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::PodParams;
    use cxl_fabric::HostId;
    use simkit::Nanos;

    #[test]
    fn snapshot_counts_activity() {
        let mut params = PodParams::new(4, 2);
        params.ssd_hosts = vec![0];
        let mut pod = PodSim::new(params);
        let d = pod.time() + Nanos::from_millis(50);
        pod.vnic_send(HostId(3), &[1u8; 256], d).expect("send");
        let d = pod.time() + Nanos::from_millis(50);
        pod.vssd_read(HostId(2), 0, 1, d).expect("read");
        let r = snapshot(&pod);
        assert_eq!(r.agents.len(), 4);
        assert_eq!(r.devices.len(), 3);
        let nic_ops: u64 = r
            .devices
            .iter()
            .filter(|x| x.kind == DeviceKind::Nic)
            .map(|x| x.ops)
            .sum();
        assert!(nic_ops >= 1, "the send should be counted");
        let ssd_ops: u64 = r
            .devices
            .iter()
            .filter(|x| x.kind == DeviceKind::Ssd)
            .map(|x| x.ops)
            .sum();
        assert!(ssd_ops >= 1, "the read should be counted");
        assert!(r.pool_writes > 0 && r.pool_loads > 0);
        // The report renders without panicking and mentions devices.
        let text = r.to_string();
        assert!(text.contains("agent[0]"));
        assert!(text.contains("Nic"));
    }

    #[test]
    fn snapshot_carries_audit_and_stage_attribution() {
        let mut params = PodParams::new(4, 2);
        params.ssd_hosts = vec![0];
        let mut pod = PodSim::new(params);
        pod.enable_audit();
        pod.enable_trace_config(simkit::trace::TraceConfig {
            capacity: 1 << 12,
            fabric_ops: false,
        });
        let d = pod.time() + Nanos::from_millis(50);
        pod.vnic_send(HostId(3), &[1u8; 256], d).expect("send");
        let d = pod.time() + Nanos::from_millis(50);
        pod.vssd_read(HostId(2), 0, 1, d).expect("read");
        let r = snapshot(&pod);
        let audit = r.audit.expect("audit enabled");
        assert!(audit.ops_audited > 0, "pool traffic should be audited");
        assert!(
            r.stages
                .iter()
                .any(|s| s.stage == "op/vnic_send" && s.kind == "nic"),
            "send root span should be attributed"
        );
        assert!(
            r.stages
                .iter()
                .any(|s| s.stage == "dev/ssd_read" && s.kind == "ssd"),
            "SSD execution should be attributed per kind"
        );
        let text = r.to_string();
        assert!(text.contains("audit:"));
        assert!(text.contains("stage latency"));
    }

    #[test]
    fn snapshot_carries_metric_timelines() {
        let mut pod = PodSim::new(PodParams::new(4, 2));
        pod.enable_metrics_config(simkit::metrics::MetricsConfig {
            interval: Nanos::from_micros(10),
            capacity: 1 << 12,
        });
        let d = pod.time() + Nanos::from_millis(50);
        pod.vnic_send(HostId(3), &[1u8; 256], d).expect("send");
        pod.run_control(Nanos::from_millis(1));
        let r = snapshot(&pod);
        assert!(!r.metrics.is_empty(), "metric rows should be present");
        assert!(
            r.metrics.windows(2).all(|w| w[0].series <= w[1].series),
            "rows sorted by series key"
        );
        let pool = r
            .metrics
            .iter()
            .find(|m| m.series == "pool/free_bytes")
            .expect("pool gauge sampled");
        assert!(pool.points > 0 && pool.last > 0.0);
        assert!(!pool.spark.is_empty());
        let text = r.to_string();
        assert!(text.contains("metrics (sampled timelines):"));
        assert!(text.contains("pool/free_bytes"));
    }

    #[test]
    fn sparkline_is_deterministic_and_bounded() {
        assert_eq!(sparkline(&[], 8), "");
        assert_eq!(sparkline(&[5.0], 8), "▁");
        assert_eq!(sparkline(&[1.0, 1.0, 1.0], 8), "▁▁▁");
        let rising: Vec<f64> = (0..64).map(f64::from).collect();
        let s = sparkline(&rising, 8);
        assert_eq!(s.chars().count(), 8);
        assert!(s.starts_with('▁') && s.ends_with('█'));
        assert_eq!(s, sparkline(&rising, 8));
    }

    #[test]
    fn snapshot_reflects_failures() {
        let mut pod = PodSim::new(PodParams::new(4, 2));
        let dev = pod.binding(HostId(3), DeviceKind::Nic).expect("bound");
        pod.fail_nic(dev);
        let d = pod.time() + Nanos::from_millis(20);
        let _ = pod.vnic_send(HostId(3), &[0u8; 32], d);
        pod.run_control(Nanos::from_millis(1));
        let r = snapshot(&pod);
        assert!(r.failovers >= 1, "failover should be recorded");
        assert!(r.devices.iter().any(|x| !x.up), "a device should be down");
        assert!(r.to_string().contains("DOWN"));
    }
}
