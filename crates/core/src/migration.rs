//! Seamless connection migration between pooled NICs (§5).
//!
//! "Our virtual NIC approach could implement the transformations
//! required to migrate connections seamlessly within the CXL pod."
//!
//! The key enabler: connection state (sequence numbers, buffers) lives
//! in shared CXL memory, so moving a connection from one physical NIC
//! to another needs no state copy over the network — just a quiesce, a
//! rebind (one orchestrator `Assign`), and a resume. This module
//! implements that flow on [`PodSim`] and measures the blackout window
//! (time between the last frame on the old NIC and the first on the
//! new one).

use cxl_fabric::HostId;
use pcie_sim::DeviceId;
use simkit::Nanos;

use crate::lifecycle;
use crate::pod::PodSim;
use crate::vdev::{DeviceKind, PoolError};

/// A transport connection whose state lives in shared pool memory.
#[derive(Clone, Copy, Debug)]
pub struct Connection {
    /// The host terminating the connection.
    pub owner: HostId,
    /// Next sequence number to send.
    pub next_seq: u32,
    /// Pool address where the connection's state block lives (what
    /// makes migration cheap: it is already visible pod-wide).
    pub state_addr: u64,
}

/// Result of one migration.
#[derive(Clone, Copy, Debug)]
pub struct MigrationReport {
    /// NIC the connection left.
    pub from: DeviceId,
    /// NIC it now uses.
    pub to: DeviceId,
    /// Time the last pre-migration frame left the old NIC.
    pub quiesced_at: Nanos,
    /// Time the first post-migration frame left the new NIC.
    pub resumed_at: Nanos,
    /// The blackout window.
    pub blackout: Nanos,
}

impl Connection {
    /// Opens a connection on `owner`, persisting its state block to
    /// pool memory.
    pub fn open(pod: &mut PodSim, owner: HostId) -> Result<Connection, PoolError> {
        let state_addr = pod.io_buf(owner);
        let mut conn = Connection {
            owner,
            next_seq: 1,
            state_addr,
        };
        conn.checkpoint(pod)?;
        Ok(conn)
    }

    /// Writes the connection state block to shared memory (8-byte seq +
    /// tag), so any host in the pod could take over.
    pub fn checkpoint(&mut self, pod: &mut PodSim) -> Result<Nanos, PoolError> {
        let mut block = [0u8; 64];
        block[0..4].copy_from_slice(&self.next_seq.to_le_bytes());
        block[4..8].copy_from_slice(b"CONN");
        let now = pod.agents[self.owner.0 as usize].clock();
        let t = pod
            .fabric
            .nt_store(now, self.owner, self.state_addr, &block)?;
        pod.agents[self.owner.0 as usize].advance_clock(t);
        Ok(t)
    }

    /// Sends one segment on the connection through the owner's pooled
    /// NIC; returns the wire-exit time.
    pub fn send_segment(
        &mut self,
        pod: &mut PodSim,
        payload_len: usize,
        deadline: Nanos,
    ) -> Result<Nanos, PoolError> {
        let mut payload = vec![0u8; payload_len.max(8)];
        payload[0..4].copy_from_slice(&self.next_seq.to_le_bytes());
        let r = pod.vnic_send(self.owner, &payload, deadline)?;
        self.next_seq += 1;
        Ok(r.at)
    }

    /// Migrates the connection to NIC `to`: quiesce (checkpoint state),
    /// rebind via the orchestrator, resume, and send the first segment
    /// on the new NIC. Returns a blackout report.
    ///
    /// The quiesce/rebind/resume mechanics and blackout accounting are
    /// shared with whole-tenant migration — see [`lifecycle::rebind`]
    /// and `PodSim::record_migration_window`; this is the one-vdev
    /// special case the lifecycle engine generalizes.
    pub fn migrate(
        &mut self,
        pod: &mut PodSim,
        to: DeviceId,
        deadline: Nanos,
    ) -> Result<MigrationReport, PoolError> {
        let from = pod
            .binding(self.owner, DeviceKind::Nic)
            .ok_or(PoolError::NotAssigned(DeviceKind::Nic))?;
        // Quiesce: flush connection state to shared memory. The last
        // in-flight frame has already left (send_segment is
        // synchronous), so the checkpoint time is the quiesce point.
        let quiesced_at = self.checkpoint(pod)?;
        // Rebind: one orchestrator assignment, pushed over the control
        // channel and applied by the owner's agent.
        lifecycle::rebind(pod, self.owner, DeviceKind::Nic, to, quiesced_at)?;
        // Resume: first segment on the new NIC.
        let resumed_at = self.send_segment(pod, 256, deadline)?;
        pod.record_migration_window(0, quiesced_at, resumed_at);
        Ok(MigrationReport {
            from,
            to,
            quiesced_at,
            resumed_at,
            blackout: resumed_at.saturating_sub(quiesced_at),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::PodParams;

    fn deadline() -> Nanos {
        Nanos::from_millis(50)
    }

    #[test]
    fn connection_sends_ordered_segments() {
        let mut pod = PodSim::new(PodParams::new(4, 2));
        let mut conn = Connection::open(&mut pod, HostId(0)).expect("open");
        for expect in 1..=3u32 {
            assert_eq!(conn.next_seq, expect);
            conn.send_segment(&mut pod, 100, deadline()).expect("send");
        }
        let dev = pod.binding(HostId(0), DeviceKind::Nic).unwrap();
        let frames = pod.take_frames(dev);
        assert_eq!(frames.len(), 3);
        for (i, f) in frames.iter().enumerate() {
            let seq = u32::from_le_bytes(f.bytes[0..4].try_into().unwrap());
            assert_eq!(seq, i as u32 + 1, "segments must stay ordered");
        }
    }

    #[test]
    fn migration_preserves_sequence_continuity() {
        let mut pod = PodSim::new(PodParams::new(4, 2));
        let mut conn = Connection::open(&mut pod, HostId(0)).expect("open");
        conn.send_segment(&mut pod, 100, deadline()).expect("seg1");
        conn.send_segment(&mut pod, 100, deadline()).expect("seg2");
        let from = pod.binding(HostId(0), DeviceKind::Nic).unwrap();
        let to = pod
            .orch
            .devices_of(DeviceKind::Nic)
            .into_iter()
            .find(|&d| d != from)
            .expect("second NIC");
        let report = conn.migrate(&mut pod, to, deadline()).expect("migrate");
        assert_eq!(report.from, from);
        assert_eq!(report.to, to);
        // Segment 3 left on the new NIC with the right sequence number.
        let new_frames = pod.take_frames(to);
        assert_eq!(new_frames.len(), 1);
        let seq = u32::from_le_bytes(new_frames[0].bytes[0..4].try_into().unwrap());
        assert_eq!(seq, 3, "no sequence gap across migration");
    }

    #[test]
    fn migration_blackout_is_sub_millisecond() {
        let mut pod = PodSim::new(PodParams::new(4, 2));
        let mut conn = Connection::open(&mut pod, HostId(0)).expect("open");
        conn.send_segment(&mut pod, 100, deadline()).expect("seg");
        let from = pod.binding(HostId(0), DeviceKind::Nic).unwrap();
        let to = pod
            .orch
            .devices_of(DeviceKind::Nic)
            .into_iter()
            .find(|&d| d != from)
            .expect("second NIC");
        let report = conn.migrate(&mut pod, to, deadline()).expect("migrate");
        assert!(
            report.blackout < Nanos::from_millis(1),
            "blackout {} too long",
            report.blackout
        );
    }

    #[test]
    fn state_block_is_visible_pod_wide() {
        let mut pod = PodSim::new(PodParams::new(4, 2));
        let mut conn = Connection::open(&mut pod, HostId(0)).expect("open");
        conn.next_seq = 77;
        let t = conn.checkpoint(&mut pod).expect("checkpoint");
        // Another host reads the connection state coherently.
        let (state, _) = pod
            .read_rx_payload(HostId(2), conn.state_addr, 8, t)
            .expect("read");
        assert_eq!(u32::from_le_bytes(state[0..4].try_into().unwrap()), 77);
        assert_eq!(&state[4..8], b"CONN");
    }
}
