//! Adaptive storage striping across pooled SSDs (§5).
//!
//! "A storage server in an object storage service like S3 could shift
//! load across a large number of SSDs if it is writing a large amount
//! of data requiring high storage bandwidth. This may behave like
//! adaptive storage striping or RAID configurations."
//!
//! [`StripedVolume`] is a RAID-0-style volume over k pooled SSDs: a
//! logical block range is split into stripe units distributed
//! round-robin. Because submissions are forwarded over the
//! sub-microsecond channel, a host can keep k remote SSDs busy in
//! parallel; the volume's completion time is the max over the devices,
//! so sequential bandwidth scales with k until another resource
//! saturates.
//!
//! [`ReplicaSet`] applies the same policy to pool *memory* across
//! failure domains: one full copy of a byte region pinned to each of
//! several distinct multi-MHD failure domains (RAID-1 across chassis,
//! striped across the MHDs inside each chassis), so a whole-domain
//! outage leaves intact copies and [`ReplicaSet::rebuild`]
//! re-materializes the lost one from a survivor.

use cxl_fabric::{DomainId, DomainPlacement, Fabric, FabricError, HostId, SegmentId};
use pcie_sim::ssd::BLOCK;
use pcie_sim::DeviceId;
use simkit::Nanos;

use crate::pod::PodSim;
use crate::vdev::PoolError;

/// A RAID-0 volume over pooled SSDs.
#[derive(Clone, Debug)]
pub struct StripedVolume {
    devs: Vec<DeviceId>,
    /// Stripe unit in blocks.
    pub stripe_blocks: u32,
}

/// Result of a volume-level operation.
#[derive(Clone, Copy, Debug)]
pub struct VolumeOp {
    /// When the whole operation (max over devices) completed.
    pub done: Nanos,
    /// When it was issued.
    pub issued: Nanos,
    /// Bytes moved.
    pub bytes: u64,
}

impl VolumeOp {
    /// Achieved bandwidth in GB/s.
    pub fn gbps(&self) -> f64 {
        let dt = (self.done - self.issued).as_nanos().max(1);
        self.bytes as f64 / dt as f64
    }
}

impl StripedVolume {
    /// Creates a volume striped over `devs` with the given stripe unit.
    ///
    /// # Panics
    ///
    /// Panics if `devs` is empty or the stripe unit is zero.
    pub fn new(devs: Vec<DeviceId>, stripe_blocks: u32) -> StripedVolume {
        assert!(!devs.is_empty(), "a volume needs at least one SSD");
        assert!(stripe_blocks > 0, "stripe unit must be nonzero");
        StripedVolume {
            devs,
            stripe_blocks,
        }
    }

    /// Number of member devices.
    pub fn width(&self) -> usize {
        self.devs.len()
    }

    /// Maps a logical block to `(device, device_lba)`.
    pub fn map(&self, logical_block: u64) -> (DeviceId, u64) {
        let unit = logical_block / self.stripe_blocks as u64;
        let within = logical_block % self.stripe_blocks as u64;
        let dev = self.devs[(unit % self.devs.len() as u64) as usize];
        let dev_unit = unit / self.devs.len() as u64;
        (dev, dev_unit * self.stripe_blocks as u64 + within)
    }

    /// Writes `data` (a whole number of blocks) at `logical_block` on
    /// behalf of `owner`. Stages each stripe unit in pool memory, fans
    /// submissions out to the member SSDs, and returns when the slowest
    /// completes.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not block-aligned.
    pub fn write(
        &self,
        pod: &mut PodSim,
        owner: HostId,
        logical_block: u64,
        data: &[u8],
        deadline: Nanos,
    ) -> Result<VolumeOp, PoolError> {
        assert!(
            (data.len() as u64).is_multiple_of(BLOCK),
            "data must be block-aligned ({} B)",
            data.len()
        );
        let blocks = data.len() as u64 / BLOCK;
        let issued = pod.time();
        let mut done = issued;
        let mut bytes = 0u64;
        let mut cur = 0u64;
        // Phase 1: stage and submit every stripe unit so all devices
        // work in parallel.
        let mut inflight = Vec::new();
        while cur < blocks {
            let lb = logical_block + cur;
            let (dev, dev_lba) = self.map(lb);
            // One stripe-unit-or-less contiguous run on this device.
            let unit_left = self.stripe_blocks as u64 - (lb % self.stripe_blocks as u64);
            let n = unit_left.min(blocks - cur);
            let buf = pod.io_buf(owner);
            let off = (cur * BLOCK) as usize;
            // simlint: allow(unwrap-in-datapath) -- cur + n <= blocks and data.len() == blocks * BLOCK (validated at entry)
            let chunk = &data[off..off + (n * BLOCK) as usize];
            let now = pod.agents[owner.0 as usize].clock();
            let staged = pod.fabric.nt_store(now, owner, buf, chunk)?;
            pod.agents[owner.0 as usize].advance_clock(staged);
            inflight.push(pod.ssd_submit_on(owner, dev, dev_lba, n as u32, buf, true)?);
            bytes += n * BLOCK;
            cur += n;
        }
        // Phase 2: collect completions.
        for sub in inflight {
            let r = pod.await_submitted(owner, sub, deadline)?;
            done = done.max(r.at);
        }
        Ok(VolumeOp {
            done,
            issued,
            bytes,
        })
    }

    /// Reads `blocks` blocks at `logical_block`; returns the
    /// reassembled data and the volume completion.
    pub fn read(
        &self,
        pod: &mut PodSim,
        owner: HostId,
        logical_block: u64,
        blocks: u64,
        deadline: Nanos,
    ) -> Result<(Vec<u8>, VolumeOp), PoolError> {
        let issued = pod.time();
        let mut done = issued;
        let mut out = vec![0u8; (blocks * BLOCK) as usize];
        let mut cur = 0u64;
        // (output offset, pool buffer, byte length) per stripe run,
        // submitted in parallel.
        let mut pieces: Vec<(usize, u64, u64)> = Vec::new();
        let mut inflight = Vec::new();
        while cur < blocks {
            let lb = logical_block + cur;
            let (dev, dev_lba) = self.map(lb);
            let unit_left = self.stripe_blocks as u64 - (lb % self.stripe_blocks as u64);
            let n = unit_left.min(blocks - cur);
            let buf = pod.io_buf(owner);
            inflight.push(pod.ssd_submit_on(owner, dev, dev_lba, n as u32, buf, false)?);
            pieces.push(((cur * BLOCK) as usize, buf, n * BLOCK));
            cur += n;
        }
        for sub in inflight {
            let r = pod.await_submitted(owner, sub, deadline)?;
            done = done.max(r.at);
        }
        for (off, buf, len) in pieces {
            let (data, _) = pod.read_rx_payload(owner, buf, len as usize, done)?;
            out[off..off + len as usize].copy_from_slice(&data);
        }
        Ok((
            out,
            VolumeOp {
                done,
                issued,
                bytes: blocks * BLOCK,
            },
        ))
    }
}

/// Copy granularity used by [`ReplicaSet::rebuild`].
const COPY_CHUNK: usize = 4096;

/// One full copy of a [`ReplicaSet`], pinned to a failure domain.
#[derive(Clone, Copy, Debug)]
pub struct Replica {
    /// The failure domain holding this copy.
    pub domain: DomainId,
    /// Backing pool segment (striped across the domain's MHDs).
    pub seg: SegmentId,
    /// Base pool address of the copy.
    pub base: u64,
}

/// A domain-replicated byte region in pool memory.
///
/// Each replica is a segment pinned to one failure domain (and striped
/// across that domain's MHDs for bandwidth); replicas never share a
/// domain, so losing an entire chassis leaves the data readable from
/// the survivors.
#[derive(Clone, Debug)]
pub struct ReplicaSet {
    owners: Vec<HostId>,
    len: u64,
    replicas: Vec<Replica>,
}

impl ReplicaSet {
    /// Allocates one pinned copy in each of `domains` (which must be
    /// distinct). Already-placed copies are released if a later one
    /// fails, so creation is all-or-nothing.
    ///
    /// # Panics
    ///
    /// Panics if `domains` is empty, repeats a domain, or `len` is 0.
    pub fn create(
        fabric: &mut Fabric,
        owners: &[HostId],
        len: u64,
        domains: &[DomainId],
    ) -> Result<ReplicaSet, FabricError> {
        assert!(len > 0, "a replica set needs a nonzero length");
        assert!(
            !domains.is_empty(),
            "a replica set needs at least one domain"
        );
        let mut distinct = domains.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(
            distinct.len(),
            domains.len(),
            "replica domains must be distinct"
        );
        let mut replicas: Vec<Replica> = Vec::with_capacity(domains.len());
        for &d in domains {
            let ways = fabric.topology().mhds_in_domain(d).len().max(1);
            match fabric.alloc_placed(owners, len, ways, DomainPlacement::Pinned(d)) {
                Ok(seg) => replicas.push(Replica {
                    domain: d,
                    seg: seg.id(),
                    base: seg.base(),
                }),
                Err(e) => {
                    for r in replicas {
                        let _ = fabric.free_segment(r.seg);
                    }
                    return Err(e);
                }
            }
        }
        Ok(ReplicaSet {
            owners: owners.to_vec(),
            len,
            replicas,
        })
    }

    /// Region length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the region is zero-length (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The live replicas, in placement order.
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// The domains currently holding a copy, in placement order.
    pub fn domains(&self) -> Vec<DomainId> {
        self.replicas.iter().map(|r| r.domain).collect()
    }

    /// Writes `data` at `off` into every copy whose domain is up
    /// (non-temporal, so the write is pod-visible on return). Returns
    /// the completion time of the slowest copy.
    pub fn write(
        &self,
        fabric: &mut Fabric,
        now: Nanos,
        host: HostId,
        off: u64,
        data: &[u8],
    ) -> Result<Nanos, FabricError> {
        let mut done = now;
        for r in &self.replicas {
            if !fabric.topology().domain_is_up(r.domain) {
                continue;
            }
            let t = fabric.nt_store(now, host, r.base + off, data)?;
            done = done.max(t);
        }
        Ok(done)
    }

    /// Reads `buf.len()` bytes at `off` from the first copy whose
    /// domain is up.
    pub fn read(
        &self,
        fabric: &mut Fabric,
        now: Nanos,
        host: HostId,
        off: u64,
        buf: &mut [u8],
    ) -> Result<Nanos, FabricError> {
        for r in &self.replicas {
            if fabric.topology().domain_is_up(r.domain) {
                return fabric.load(now, host, r.base + off, buf);
            }
        }
        Err(FabricError::InsufficientDomains {
            wanted: 1,
            available: 0,
        })
    }

    /// Re-materializes the copy lost to the `failed` domain: the dead
    /// segment is released, a fresh pinned copy is allocated in the
    /// most-free up domain that does not already hold one, and the data
    /// is copied over from a surviving replica. Returns the new
    /// domain, or `Ok(None)` when no spare domain exists (the set
    /// continues degraded with the survivors).
    pub fn rebuild(
        &mut self,
        fabric: &mut Fabric,
        now: Nanos,
        host: HostId,
        failed: DomainId,
    ) -> Result<Option<DomainId>, FabricError> {
        let Some(idx) = self.replicas.iter().position(|r| r.domain == failed) else {
            return Ok(None); // No copy was there; nothing lost.
        };
        let src = self
            .replicas
            .iter()
            .find(|r| r.domain != failed && fabric.topology().domain_is_up(r.domain))
            .copied()
            .ok_or(FabricError::DomainDown(failed))?;
        let dead = self.replicas.remove(idx);
        let _ = fabric.free_segment(dead.seg);
        let used = self.domains();
        let mut cands: Vec<DomainId> = (0..fabric.topology().domains())
            .map(DomainId)
            .filter(|&d| d != failed && !used.contains(&d) && fabric.topology().domain_is_up(d))
            .collect();
        cands.sort_by_key(|&d| (std::cmp::Reverse(fabric.domain_free(d)), d));
        let Some(&target) = cands.first() else {
            return Ok(None);
        };
        let ways = fabric.topology().mhds_in_domain(target).len().max(1);
        let seg = fabric.alloc_placed(
            &self.owners,
            self.len,
            ways,
            DomainPlacement::Pinned(target),
        )?;
        let mut t = now;
        let mut off = 0u64;
        let mut buf = vec![0u8; COPY_CHUNK];
        while off < self.len {
            let n = ((self.len - off) as usize).min(COPY_CHUNK);
            // simlint: allow(unwrap-in-datapath) -- n is min-clamped to COPY_CHUNK == buf.len()
            t = fabric.load(t, host, src.base + off, &mut buf[..n])?;
            // simlint: allow(unwrap-in-datapath) -- n is min-clamped to COPY_CHUNK == buf.len()
            t = fabric.nt_store(t, host, seg.base() + off, &buf[..n])?;
            off += n as u64;
        }
        self.replicas.push(Replica {
            domain: target,
            seg: seg.id(),
            base: seg.base(),
        });
        Ok(Some(target))
    }

    /// Releases every copy back to the pool (tenant departure).
    /// `Fabric::free_segment` clears the coherence auditor's per-line
    /// shadow state for each replica across *all* domains, so a later
    /// tenant reusing these addresses can never alias the old copies'
    /// history.
    pub fn free(self, fabric: &mut Fabric) {
        for r in self.replicas {
            let _ = fabric.free_segment(r.seg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::PodParams;
    use crate::vdev::DeviceKind;

    fn pod_with_ssds(n: u16) -> (PodSim, Vec<DeviceId>) {
        let mut params = PodParams::new(4, 1);
        params.ssd_hosts = (0..n).map(|i| i % 4).collect();
        // Wider buffers for stripe staging.
        params.io_slots = 32;
        let pod = PodSim::new(params);
        let devs = pod.orch.devices_of(DeviceKind::Ssd);
        (pod, devs)
    }

    fn deadline() -> Nanos {
        Nanos::from_millis(100)
    }

    #[test]
    fn map_round_robins_units() {
        let v = StripedVolume::new(vec![DeviceId(1), DeviceId(2), DeviceId(3)], 4);
        let (d0, l0) = v.map(0);
        let (d1, _) = v.map(4);
        let (d2, _) = v.map(8);
        let (d3, l3) = v.map(12);
        assert_eq!(d0, DeviceId(1));
        assert_eq!(d1, DeviceId(2));
        assert_eq!(d2, DeviceId(3));
        assert_eq!(d3, DeviceId(1), "wraps to first device");
        assert_eq!(l0, 0);
        assert_eq!(l3, 4, "second unit on first device");
    }

    #[test]
    fn map_within_unit_is_contiguous() {
        let v = StripedVolume::new(vec![DeviceId(1), DeviceId(2)], 4);
        for i in 0..4 {
            let (d, l) = v.map(i);
            assert_eq!(d, DeviceId(1));
            assert_eq!(l, i);
        }
    }

    #[test]
    fn write_read_roundtrip_over_three_ssds() {
        let (mut pod, devs) = pod_with_ssds(3);
        let v = StripedVolume::new(devs, 2);
        let data: Vec<u8> = (0..(12 * BLOCK) as usize)
            .map(|i| (i % 241) as u8)
            .collect();
        v.write(&mut pod, HostId(3), 100, &data, deadline())
            .expect("write");
        let (back, _) = v
            .read(&mut pod, HostId(3), 100, 12, deadline())
            .expect("read");
        assert_eq!(back, data);
    }

    #[test]
    fn striping_scales_bandwidth() {
        // The same 32-block write over 1 vs 4 SSDs: more devices, more
        // parallel flash channels, faster completion.
        let (mut pod1, devs1) = pod_with_ssds(1);
        let v1 = StripedVolume::new(devs1, 2);
        let data: Vec<u8> = vec![7u8; (32 * BLOCK) as usize];
        let w1 = v1
            .write(&mut pod1, HostId(3), 0, &data, deadline())
            .expect("w1");

        let (mut pod4, devs4) = pod_with_ssds(4);
        let v4 = StripedVolume::new(devs4, 2);
        let w4 = v4
            .write(&mut pod4, HostId(3), 0, &data, deadline())
            .expect("w4");

        assert!(
            w4.gbps() > w1.gbps() * 1.5,
            "4-way {} GB/s vs 1-way {} GB/s",
            w4.gbps(),
            w1.gbps()
        );
    }

    fn multi_domain_fabric(domains: u16, mhds_per_domain: u16) -> Fabric {
        let mhds = domains * mhds_per_domain;
        Fabric::new(cxl_fabric::PodConfig::new(2, mhds, mhds).with_domains(domains))
    }

    #[test]
    fn replica_set_places_one_copy_per_domain() {
        let mut f = multi_domain_fabric(3, 2);
        let rs = ReplicaSet::create(
            &mut f,
            &[HostId(0), HostId(1)],
            8192,
            &[DomainId(0), DomainId(2)],
        )
        .expect("create");
        assert_eq!(rs.domains(), vec![DomainId(0), DomainId(2)]);
        for r in rs.replicas() {
            let seg = f.segment(r.seg).expect("live segment");
            for w in seg.ways() {
                assert_eq!(f.topology().domain_of(*w), r.domain, "copy leaked out");
            }
        }
    }

    #[test]
    fn replica_set_survives_domain_loss() {
        let mut f = multi_domain_fabric(2, 2);
        let rs = ReplicaSet::create(&mut f, &[HostId(0)], 4096, &[DomainId(0), DomainId(1)])
            .expect("create");
        let data = [0xabu8; 256];
        let t = rs
            .write(&mut f, Nanos(0), HostId(0), 128, &data)
            .expect("write");
        f.topology_mut().fail_domain(DomainId(0));
        let mut back = [0u8; 256];
        rs.read(&mut f, t, HostId(0), 128, &mut back)
            .expect("read from survivor");
        assert_eq!(back, data);
    }

    #[test]
    fn replica_set_rebuild_rematerializes_into_spare_domain() {
        let mut f = multi_domain_fabric(3, 1);
        let mut rs = ReplicaSet::create(&mut f, &[HostId(0)], 8192, &[DomainId(0), DomainId(1)])
            .expect("create");
        let data: Vec<u8> = (0..8192).map(|i| (i % 251) as u8).collect();
        let t = rs
            .write(&mut f, Nanos(0), HostId(0), 0, &data)
            .expect("write");
        f.topology_mut().fail_domain(DomainId(0));
        let new = rs
            .rebuild(&mut f, t, HostId(0), DomainId(0))
            .expect("rebuild");
        assert_eq!(new, Some(DomainId(2)), "spare domain takes the copy");
        assert_eq!(rs.domains(), vec![DomainId(1), DomainId(2)]);
        // The re-materialized copy holds the data: fail the source too
        // and read from the new one.
        f.topology_mut().fail_domain(DomainId(1));
        let mut back = vec![0u8; 8192];
        let now = Nanos::from_millis(1);
        rs.read(&mut f, now, HostId(0), 0, &mut back)
            .expect("read rebuilt copy");
        assert_eq!(back, data);
    }

    #[test]
    fn replica_set_rebuild_without_spare_stays_degraded() {
        let mut f = multi_domain_fabric(2, 1);
        let mut rs = ReplicaSet::create(&mut f, &[HostId(0)], 4096, &[DomainId(0), DomainId(1)])
            .expect("create");
        f.topology_mut().fail_domain(DomainId(1));
        let new = rs
            .rebuild(&mut f, Nanos(0), HostId(0), DomainId(1))
            .expect("rebuild");
        assert_eq!(new, None, "no spare domain in a 2-domain pod");
        assert_eq!(rs.domains(), vec![DomainId(0)]);
    }

    #[test]
    fn different_widths_preserve_integrity() {
        for width in [1u16, 2, 4] {
            let (mut pod, devs) = pod_with_ssds(width);
            let v = StripedVolume::new(devs, 1);
            let data: Vec<u8> = (0..(8 * BLOCK) as usize).map(|i| (i / 7) as u8).collect();
            v.write(&mut pod, HostId(2), 0, &data, deadline())
                .expect("write");
            let (back, _) = v.read(&mut pod, HostId(2), 0, 8, deadline()).expect("read");
            assert_eq!(back, data, "width {width} corrupted data");
        }
    }
}
