//! Adaptive storage striping across pooled SSDs (§5).
//!
//! "A storage server in an object storage service like S3 could shift
//! load across a large number of SSDs if it is writing a large amount
//! of data requiring high storage bandwidth. This may behave like
//! adaptive storage striping or RAID configurations."
//!
//! [`StripedVolume`] is a RAID-0-style volume over k pooled SSDs: a
//! logical block range is split into stripe units distributed
//! round-robin. Because submissions are forwarded over the
//! sub-microsecond channel, a host can keep k remote SSDs busy in
//! parallel; the volume's completion time is the max over the devices,
//! so sequential bandwidth scales with k until another resource
//! saturates.

use cxl_fabric::HostId;
use pcie_sim::ssd::BLOCK;
use pcie_sim::DeviceId;
use simkit::Nanos;

use crate::pod::PodSim;
use crate::vdev::PoolError;

/// A RAID-0 volume over pooled SSDs.
#[derive(Clone, Debug)]
pub struct StripedVolume {
    devs: Vec<DeviceId>,
    /// Stripe unit in blocks.
    pub stripe_blocks: u32,
}

/// Result of a volume-level operation.
#[derive(Clone, Copy, Debug)]
pub struct VolumeOp {
    /// When the whole operation (max over devices) completed.
    pub done: Nanos,
    /// When it was issued.
    pub issued: Nanos,
    /// Bytes moved.
    pub bytes: u64,
}

impl VolumeOp {
    /// Achieved bandwidth in GB/s.
    pub fn gbps(&self) -> f64 {
        let dt = (self.done - self.issued).as_nanos().max(1);
        self.bytes as f64 / dt as f64
    }
}

impl StripedVolume {
    /// Creates a volume striped over `devs` with the given stripe unit.
    ///
    /// # Panics
    ///
    /// Panics if `devs` is empty or the stripe unit is zero.
    pub fn new(devs: Vec<DeviceId>, stripe_blocks: u32) -> StripedVolume {
        assert!(!devs.is_empty(), "a volume needs at least one SSD");
        assert!(stripe_blocks > 0, "stripe unit must be nonzero");
        StripedVolume {
            devs,
            stripe_blocks,
        }
    }

    /// Number of member devices.
    pub fn width(&self) -> usize {
        self.devs.len()
    }

    /// Maps a logical block to `(device, device_lba)`.
    pub fn map(&self, logical_block: u64) -> (DeviceId, u64) {
        let unit = logical_block / self.stripe_blocks as u64;
        let within = logical_block % self.stripe_blocks as u64;
        let dev = self.devs[(unit % self.devs.len() as u64) as usize];
        let dev_unit = unit / self.devs.len() as u64;
        (dev, dev_unit * self.stripe_blocks as u64 + within)
    }

    /// Writes `data` (a whole number of blocks) at `logical_block` on
    /// behalf of `owner`. Stages each stripe unit in pool memory, fans
    /// submissions out to the member SSDs, and returns when the slowest
    /// completes.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not block-aligned.
    pub fn write(
        &self,
        pod: &mut PodSim,
        owner: HostId,
        logical_block: u64,
        data: &[u8],
        deadline: Nanos,
    ) -> Result<VolumeOp, PoolError> {
        assert!(
            (data.len() as u64).is_multiple_of(BLOCK),
            "data must be block-aligned ({} B)",
            data.len()
        );
        let blocks = data.len() as u64 / BLOCK;
        let issued = pod.time();
        let mut done = issued;
        let mut bytes = 0u64;
        let mut cur = 0u64;
        // Phase 1: stage and submit every stripe unit so all devices
        // work in parallel.
        let mut inflight = Vec::new();
        while cur < blocks {
            let lb = logical_block + cur;
            let (dev, dev_lba) = self.map(lb);
            // One stripe-unit-or-less contiguous run on this device.
            let unit_left = self.stripe_blocks as u64 - (lb % self.stripe_blocks as u64);
            let n = unit_left.min(blocks - cur);
            let buf = pod.io_buf(owner);
            let off = (cur * BLOCK) as usize;
            let chunk = &data[off..off + (n * BLOCK) as usize];
            let now = pod.agents[owner.0 as usize].clock();
            let staged = pod.fabric.nt_store(now, owner, buf, chunk)?;
            pod.agents[owner.0 as usize].advance_clock(staged);
            inflight.push(pod.ssd_submit_on(owner, dev, dev_lba, n as u32, buf, true)?);
            bytes += n * BLOCK;
            cur += n;
        }
        // Phase 2: collect completions.
        for sub in inflight {
            let r = pod.await_submitted(owner, sub, deadline)?;
            done = done.max(r.at);
        }
        Ok(VolumeOp {
            done,
            issued,
            bytes,
        })
    }

    /// Reads `blocks` blocks at `logical_block`; returns the
    /// reassembled data and the volume completion.
    pub fn read(
        &self,
        pod: &mut PodSim,
        owner: HostId,
        logical_block: u64,
        blocks: u64,
        deadline: Nanos,
    ) -> Result<(Vec<u8>, VolumeOp), PoolError> {
        let issued = pod.time();
        let mut done = issued;
        let mut out = vec![0u8; (blocks * BLOCK) as usize];
        let mut cur = 0u64;
        // (output offset, pool buffer, byte length) per stripe run,
        // submitted in parallel.
        let mut pieces: Vec<(usize, u64, u64)> = Vec::new();
        let mut inflight = Vec::new();
        while cur < blocks {
            let lb = logical_block + cur;
            let (dev, dev_lba) = self.map(lb);
            let unit_left = self.stripe_blocks as u64 - (lb % self.stripe_blocks as u64);
            let n = unit_left.min(blocks - cur);
            let buf = pod.io_buf(owner);
            inflight.push(pod.ssd_submit_on(owner, dev, dev_lba, n as u32, buf, false)?);
            pieces.push(((cur * BLOCK) as usize, buf, n * BLOCK));
            cur += n;
        }
        for sub in inflight {
            let r = pod.await_submitted(owner, sub, deadline)?;
            done = done.max(r.at);
        }
        for (off, buf, len) in pieces {
            let (data, _) = pod.read_rx_payload(owner, buf, len as usize, done)?;
            out[off..off + len as usize].copy_from_slice(&data);
        }
        Ok((
            out,
            VolumeOp {
                done,
                issued,
                bytes: blocks * BLOCK,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::PodParams;
    use crate::vdev::DeviceKind;

    fn pod_with_ssds(n: u16) -> (PodSim, Vec<DeviceId>) {
        let mut params = PodParams::new(4, 1);
        params.ssd_hosts = (0..n).map(|i| i % 4).collect();
        // Wider buffers for stripe staging.
        params.io_slots = 32;
        let pod = PodSim::new(params);
        let devs = pod.orch.devices_of(DeviceKind::Ssd);
        (pod, devs)
    }

    fn deadline() -> Nanos {
        Nanos::from_millis(100)
    }

    #[test]
    fn map_round_robins_units() {
        let v = StripedVolume::new(vec![DeviceId(1), DeviceId(2), DeviceId(3)], 4);
        let (d0, l0) = v.map(0);
        let (d1, _) = v.map(4);
        let (d2, _) = v.map(8);
        let (d3, l3) = v.map(12);
        assert_eq!(d0, DeviceId(1));
        assert_eq!(d1, DeviceId(2));
        assert_eq!(d2, DeviceId(3));
        assert_eq!(d3, DeviceId(1), "wraps to first device");
        assert_eq!(l0, 0);
        assert_eq!(l3, 4, "second unit on first device");
    }

    #[test]
    fn map_within_unit_is_contiguous() {
        let v = StripedVolume::new(vec![DeviceId(1), DeviceId(2)], 4);
        for i in 0..4 {
            let (d, l) = v.map(i);
            assert_eq!(d, DeviceId(1));
            assert_eq!(l, i);
        }
    }

    #[test]
    fn write_read_roundtrip_over_three_ssds() {
        let (mut pod, devs) = pod_with_ssds(3);
        let v = StripedVolume::new(devs, 2);
        let data: Vec<u8> = (0..(12 * BLOCK) as usize)
            .map(|i| (i % 241) as u8)
            .collect();
        v.write(&mut pod, HostId(3), 100, &data, deadline())
            .expect("write");
        let (back, _) = v
            .read(&mut pod, HostId(3), 100, 12, deadline())
            .expect("read");
        assert_eq!(back, data);
    }

    #[test]
    fn striping_scales_bandwidth() {
        // The same 32-block write over 1 vs 4 SSDs: more devices, more
        // parallel flash channels, faster completion.
        let (mut pod1, devs1) = pod_with_ssds(1);
        let v1 = StripedVolume::new(devs1, 2);
        let data: Vec<u8> = vec![7u8; (32 * BLOCK) as usize];
        let w1 = v1
            .write(&mut pod1, HostId(3), 0, &data, deadline())
            .expect("w1");

        let (mut pod4, devs4) = pod_with_ssds(4);
        let v4 = StripedVolume::new(devs4, 2);
        let w4 = v4
            .write(&mut pod4, HostId(3), 0, &data, deadline())
            .expect("w4");

        assert!(
            w4.gbps() > w1.gbps() * 1.5,
            "4-way {} GB/s vs 1-way {} GB/s",
            w4.gbps(),
            w1.gbps()
        );
    }

    #[test]
    fn different_widths_preserve_integrity() {
        for width in [1u16, 2, 4] {
            let (mut pod, devs) = pod_with_ssds(width);
            let v = StripedVolume::new(devs, 1);
            let data: Vec<u8> = (0..(8 * BLOCK) as usize).map(|i| (i / 7) as u8).collect();
            v.write(&mut pod, HostId(2), 0, &data, deadline())
                .expect("write");
            let (back, _) = v.read(&mut pod, HostId(2), 0, 8, deadline()).expect("read");
            assert_eq!(back, data, "width {width} corrupted data");
        }
    }
}
