//! ToR-less datacenter networks (§5): availability modelling.
//!
//! "Instead of oversubscribing at the ToR level, we can provision
//! sufficient NICs within each CXL pod to provide equivalent
//! oversubscription, and then directly connect these NICs to multiple
//! switches within the aggregation layer. … This would require high
//! CXL pod reliability."
//!
//! This module compares the probability that a host loses network
//! connectivity under three rack designs, both analytically and by
//! Monte Carlo over component failures:
//!
//! - **Single ToR**: host NIC → one ToR (classic).
//! - **Dual ToR**: host NIC → two ToRs (the expensive fix).
//! - **ToR-less pod**: host → λ CXL paths → pool of `n` NICs wired
//!   straight into the aggregation layer; the host is cut off only if
//!   all λ of its pod paths fail or every pool NIC fails.

use serde::Serialize;
use simkit::rng::Rng;

/// Annual component failure probabilities.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct FailureRates {
    /// NIC failure probability per year.
    pub nic: f64,
    /// ToR switch failure probability per year.
    pub tor: f64,
    /// CXL link (cable/port) failure probability per year.
    pub cxl_link: f64,
    /// MHD (pool memory device) failure probability per year.
    pub mhd: f64,
}

impl Default for FailureRates {
    fn default() -> Self {
        // Conservative round numbers in line with published annual
        // failure rates for datacenter components.
        FailureRates {
            nic: 0.01,
            tor: 0.02,
            cxl_link: 0.005,
            mhd: 0.01,
        }
    }
}

/// The rack design being evaluated.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub enum RackDesign {
    /// One NIC per host, one ToR for the rack.
    SingleTor,
    /// One NIC per host, two ToRs.
    DualTor,
    /// CXL pod: λ pod paths per host, `nics` pooled NICs uplinked
    /// directly to the aggregation layer.
    TorLess {
        /// Redundant CXL paths per host (each = link + MHD in series).
        lambda: u16,
        /// Pooled NICs in the pod.
        nics: u16,
    },
}

/// Analytic probability that a given host is unreachable for the year.
pub fn p_unreachable(design: RackDesign, rates: &FailureRates) -> f64 {
    match design {
        // Host is cut off if its own NIC fails OR the ToR fails.
        RackDesign::SingleTor => 1.0 - (1.0 - rates.nic) * (1.0 - rates.tor),
        // Both ToRs must fail, or the host NIC.
        RackDesign::DualTor => 1.0 - (1.0 - rates.nic) * (1.0 - rates.tor * rates.tor),
        // All λ pod paths fail (path = link AND mhd alive) or all NICs
        // fail.
        RackDesign::TorLess { lambda, nics } => {
            let p_path_ok = (1.0 - rates.cxl_link) * (1.0 - rates.mhd);
            let p_all_paths_dead = (1.0 - p_path_ok).powi(lambda as i32);
            let p_all_nics_dead = rates.nic.powi(nics as i32);
            1.0 - (1.0 - p_all_paths_dead) * (1.0 - p_all_nics_dead)
        }
    }
}

/// Converts a probability of unavailability to "nines" (e.g. 0.001 →
/// 3.0).
pub fn nines(p_unavailable: f64) -> f64 {
    if p_unavailable <= 0.0 {
        return f64::INFINITY;
    }
    -p_unavailable.log10()
}

/// Monte Carlo estimate of the same probability, for cross-checking
/// the analytic expression (`trials` independent year-samples).
pub fn simulate(design: RackDesign, rates: &FailureRates, trials: u32, seed: u64) -> f64 {
    let mut rng = Rng::new(seed);
    let mut down = 0u32;
    for _ in 0..trials {
        let unreachable = match design {
            RackDesign::SingleTor => rng.chance(rates.nic) || rng.chance(rates.tor),
            RackDesign::DualTor => {
                rng.chance(rates.nic) || (rng.chance(rates.tor) && rng.chance(rates.tor))
            }
            RackDesign::TorLess { lambda, nics } => {
                let mut any_path = false;
                for _ in 0..lambda {
                    let link_ok = !rng.chance(rates.cxl_link);
                    let mhd_ok = !rng.chance(rates.mhd);
                    if link_ok && mhd_ok {
                        any_path = true;
                    }
                }
                let mut any_nic = false;
                for _ in 0..nics {
                    if !rng.chance(rates.nic) {
                        any_nic = true;
                    }
                }
                !(any_path && any_nic)
            }
        };
        if unreachable {
            down += 1;
        }
    }
    down as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_tor_beats_single_tor() {
        let r = FailureRates::default();
        assert!(p_unreachable(RackDesign::DualTor, &r) < p_unreachable(RackDesign::SingleTor, &r));
    }

    #[test]
    fn torless_with_redundancy_beats_dual_tor() {
        let r = FailureRates::default();
        let torless = p_unreachable(RackDesign::TorLess { lambda: 4, nics: 8 }, &r);
        let dual = p_unreachable(RackDesign::DualTor, &r);
        assert!(torless < dual, "torless {torless} vs dual {dual}");
    }

    #[test]
    fn lambda_one_torless_is_fragile() {
        // With a single pod path, the ToR-less design inherits the
        // path's failure probability — the paper's "requires high CXL
        // pod reliability" caveat.
        let r = FailureRates::default();
        let l1 = p_unreachable(RackDesign::TorLess { lambda: 1, nics: 8 }, &r);
        let l4 = p_unreachable(RackDesign::TorLess { lambda: 4, nics: 8 }, &r);
        assert!(l1 > l4 * 100.0, "λ=1 {l1} vs λ=4 {l4}");
    }

    #[test]
    fn more_lambda_monotonically_helps() {
        let r = FailureRates::default();
        let mut prev = 1.0;
        for lambda in [1u16, 2, 4, 8] {
            let p = p_unreachable(RackDesign::TorLess { lambda, nics: 8 }, &r);
            assert!(p < prev, "λ={lambda}: {p} !< {prev}");
            prev = p;
        }
    }

    #[test]
    fn monte_carlo_matches_analytic() {
        let r = FailureRates::default();
        for design in [
            RackDesign::SingleTor,
            RackDesign::DualTor,
            RackDesign::TorLess { lambda: 2, nics: 4 },
        ] {
            let analytic = p_unreachable(design, &r);
            let mc = simulate(design, &r, 2_000_000, 42);
            let tol = (analytic * 0.15).max(2e-4);
            assert!(
                (analytic - mc).abs() < tol,
                "{design:?}: analytic {analytic} vs mc {mc}"
            );
        }
    }

    #[test]
    fn nines_scale() {
        assert!((nines(0.001) - 3.0).abs() < 1e-9);
        assert!((nines(0.03) - 1.52).abs() < 0.01);
        assert_eq!(nines(0.0), f64::INFINITY);
    }
}
