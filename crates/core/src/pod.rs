//! Pod assembly: one simulated rack running the full pooling system.
//!
//! [`PodSim`] owns the CXL fabric, every host's pooling agent (with its
//! physical devices), the full mesh of agent-to-agent shared-memory
//! channels, and the orchestrator with its control channels. Its
//! methods implement the *client side* of the datapath — what the
//! userspace I/O stack on a host does to use a pooled device:
//!
//! 1. write the I/O buffer into shared pool memory (non-temporal),
//! 2. forward the MMIO submission to the device's attach host,
//! 3. poll for the completion message.
//!
//! When the assigned device happens to be local, the same call takes
//! the fast path: plain doorbell + device queue, no forwarding.

use std::collections::HashMap;

use cxl_fabric::{DomainId, Fabric, HostId, LinkId, MhdId, PodConfig};
use pcie_sim::nic::TxFrame;
use pcie_sim::{Accelerator, BufRef, DeviceId, Nic, NicConfig, Ssd, SsdConfig};
use simkit::metrics::{Labels, MetricId, MetricsConfig, MetricsRecorder};
use simkit::trace::{self, TraceConfig, TraceRecorder, Track};
use simkit::Nanos;

use crate::agent::{Agent, Completion, Link, Peer};
use crate::lifecycle::LifecycleStats;
use crate::orchestrator::{AllocPolicy, Orchestrator};
use crate::proto::Msg;
use crate::vdev::{DeviceKind, PoolError};

/// Size of one client I/O buffer slot.
pub const IO_SLOT: u64 = 64 * 1024;

/// Pod construction parameters.
#[derive(Clone, Debug)]
pub struct PodParams {
    /// Number of hosts.
    pub hosts: u16,
    /// Number of MHDs in the CXL pool.
    pub mhds: u16,
    /// Failure domains the MHDs are spread over (round-robin). `0`
    /// (the default) means one domain per MHD; otherwise the value
    /// must evenly divide `mhds`.
    pub domains: u16,
    /// Path redundancy λ.
    pub lambda: u16,
    /// Hosts that get a NIC (one per entry; repeats allowed).
    pub nic_hosts: Vec<u16>,
    /// Hosts that get an SSD.
    pub ssd_hosts: Vec<u16>,
    /// Hosts that get an accelerator.
    pub accel_hosts: Vec<u16>,
    /// Ring capacity (slots) of each control channel.
    pub ring_slots: u64,
    /// I/O buffer slots per host.
    pub io_slots: u64,
    /// Allocation policy.
    pub policy: AllocPolicy,
    /// RNG seed (policy randomness).
    pub seed: u64,
}

impl PodParams {
    /// A small pod: `hosts` hosts, NICs on the first `nics` hosts,
    /// defaults elsewhere.
    pub fn new(hosts: u16, nics: u16) -> PodParams {
        PodParams {
            hosts,
            mhds: 2,
            domains: 0,
            lambda: 2,
            nic_hosts: (0..nics.min(hosts)).collect(),
            ssd_hosts: Vec::new(),
            accel_hosts: Vec::new(),
            ring_slots: 64,
            io_slots: 16,
            policy: AllocPolicy::LocalFirst { threshold: 80 },
            seed: 7,
        }
    }
}

/// A submitted-but-not-awaited pooled operation.
#[derive(Clone, Copy, Debug)]
pub enum Submitted {
    /// The fast path already completed the operation.
    Local(OpResult),
    /// A forwarded operation whose completion must be awaited.
    Remote {
        /// Operation id to match the completion.
        op: u64,
        /// Host executing the operation.
        attach: HostId,
    },
}

/// Outcome of a completed pooled operation.
#[derive(Clone, Copy, Debug)]
pub struct OpResult {
    /// Operation id.
    pub op: u64,
    /// Device-reported completion time.
    pub at: Nanos,
    /// True if the fast (local, non-forwarded) path was used.
    pub local: bool,
}

/// The full simulated pod.
pub struct PodSim {
    /// The CXL fabric.
    pub fabric: Fabric,
    /// Per-host agents (index = host id).
    pub agents: Vec<Agent>,
    /// The orchestrator.
    pub orch: Orchestrator,
    io_base: Vec<u64>,
    io_slots: u64,
    next_io: Vec<u64>,
    next_op: u64,
    dev_attach: HashMap<DeviceId, HostId>,
    ring_slots: u64,
    /// Mesh channel backing segments: `(a, b, seg_ab, seg_ba)`.
    mesh_segs: Vec<(u16, u16, cxl_fabric::SegmentId, cxl_fabric::SegmentId)>,
    /// Orchestrator channel backing segments: `(host, seg_to, seg_from)`.
    orch_segs: Vec<(u16, cxl_fabric::SegmentId, cxl_fabric::SegmentId)>,
    /// Per-host I/O segment ids.
    io_segs: Vec<cxl_fabric::SegmentId>,
    /// Metric handles the pod-side sampler refreshes each tick
    /// (`None` until [`PodSim::enable_metrics`]).
    metric_ids: Option<PodMetricIds>,
    /// Tenant-lifecycle counters and the pod-wide blackout histogram
    /// (see [`crate::lifecycle`]); always on, metrics-independent.
    pub lifecycle: LifecycleStats,
}

/// Handles for every pod-level metric series, in registration order.
/// Held by the pod (not the recorder) so the sampling pass is a plain
/// indexed walk with no name lookups.
struct PodMetricIds {
    /// `host/served_ops`, per host.
    host_served: Vec<MetricId>,
    /// `host/queue_depth`, per host.
    host_queue: Vec<MetricId>,
    /// `chan/stall_ns`, per host.
    chan_stall: Vec<MetricId>,
    /// `chan/blocked`, per host.
    chan_blocked: Vec<MetricId>,
    /// `pool/free_bytes`.
    pool_free: MetricId,
    /// `domain/free_bytes` and `domain/capacity_bytes`, per domain.
    domain_free: Vec<MetricId>,
    /// See [`PodMetricIds::domain_free`].
    domain_capacity: Vec<MetricId>,
    /// `mhd/free_bytes`, per MHD.
    mhd_free: Vec<MetricId>,
    /// `link/uplink_util`, per CXL link (with the link's host + MHD
    /// labels), paired with the link id to sample.
    link_util: Vec<(LinkId, MetricId)>,
    /// `audit/violations` (0 while auditing is off).
    audit_violations: MetricId,
    /// `orch/migrations`.
    orch_migrations: MetricId,
    /// `orch/failovers`.
    orch_failovers: MetricId,
    /// `lifecycle/blackout_ns` (histogram; fed at migration time).
    lifecycle_blackout: MetricId,
    /// `lifecycle/in_flight_migrations` (gauge).
    lifecycle_in_flight: MetricId,
}

impl PodSim {
    /// Turns on fabric coherence auditing (see `cxl_fabric::audit`):
    /// every subsequent pool access by agents, devices, and the
    /// orchestrator is checked for stale reads, lost writes,
    /// write-write conflicts, and torn reads.
    pub fn enable_audit(&mut self) {
        self.fabric.enable_audit(cxl_fabric::AuditConfig::default());
    }

    /// Like [`PodSim::enable_audit`] but with an explicit analysis
    /// mode (`AuditMode::VectorClock` turns on the happens-before race
    /// detector; the CLI surfaces this as `--audit=vc`).
    pub fn enable_audit_mode(&mut self, mode: cxl_fabric::AuditMode) {
        self.fabric.enable_audit(cxl_fabric::AuditConfig {
            mode,
            ..cxl_fabric::AuditConfig::default()
        });
    }

    /// Settles in-flight writes and returns the final audit report
    /// (None when auditing was never enabled).
    pub fn audit_finalize(&mut self) -> Option<cxl_fabric::AuditReport> {
        let now = self.time();
        self.fabric.audit_finalize(now)
    }

    /// Race findings with per-line clock snapshots (vector-clock audit
    /// mode; None when auditing was never enabled).
    pub fn race_report(&self) -> Option<cxl_fabric::RaceReport> {
        self.fabric.race_report()
    }

    /// Turns on the pod-wide flight recorder (see `simkit::trace`):
    /// every subsequent client operation leaves a causal span chain —
    /// payload staging, protocol encode, channel send/poll, agent
    /// dispatch, doorbell, device + DMA execution, completion delivery
    /// — exportable with [`PodSim::export_trace`]. Honours
    /// `CXL_TRACE=full` / `CXL_TRACE_CAPACITY` via
    /// [`TraceConfig::default`].
    pub fn enable_trace(&mut self) {
        self.fabric.enable_trace(TraceConfig::default());
    }

    /// Like [`PodSim::enable_trace`] but with an explicit
    /// configuration (capacity, per-access fabric spans).
    pub fn enable_trace_config(&mut self, config: TraceConfig) {
        self.fabric.enable_trace(config);
    }

    /// The flight recorder, if enabled.
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.fabric.trace()
    }

    /// Exports the recording as Chrome/Perfetto trace-event JSON
    /// (None when tracing was never enabled). When the metrics plane
    /// is also on, its sampled timelines are merged in as counter
    /// tracks (`"ph":"C"`) so gauges render alongside the spans.
    pub fn export_trace(&self) -> Option<String> {
        let counters = self
            .fabric
            .metrics()
            .map(|m| m.counter_track_events())
            .unwrap_or_default();
        self.fabric
            .trace()
            .map(|t| t.export_chrome_json_with(&counters))
    }

    /// Turns on the pod-wide metrics plane (see `simkit::metrics`): a
    /// simulated-time sampler records per-host CPU/queue occupancy,
    /// per-domain and per-MHD capacity, per-link bandwidth
    /// utilisation, audit violation counts and orchestrator events at
    /// a fixed interval. Honours `CXL_METRICS=<interval>` /
    /// `CXL_METRICS_CAPACITY` via [`MetricsConfig::default`].
    /// Sampling is observation-only: it never advances any simulated
    /// clock, so metrics-on runs stay bit-identical in simulated time.
    pub fn enable_metrics(&mut self) {
        self.enable_metrics_config(MetricsConfig::default());
    }

    /// Like [`PodSim::enable_metrics`] but with an explicit
    /// configuration (interval, sample-ring capacity).
    pub fn enable_metrics_config(&mut self, config: MetricsConfig) {
        self.fabric.enable_metrics(config);
        self.register_pod_metrics();
    }

    /// The metrics recorder, if enabled.
    pub fn metrics(&self) -> Option<&MetricsRecorder> {
        self.fabric.metrics()
    }

    /// Mutable metrics recorder, if enabled. Workload drivers use
    /// this to register their own (e.g. per-tenant) series alongside
    /// the pod's.
    pub fn metrics_mut(&mut self) -> Option<&mut MetricsRecorder> {
        self.fabric.metrics_mut()
    }

    /// Schema'd CSV dump of every sampled point, sorted by metric
    /// registration with time ascending within a series (None when
    /// metrics were never enabled).
    pub fn export_metrics_csv(&self) -> Option<String> {
        self.fabric.metrics().map(|m| m.export_csv())
    }

    /// Schema'd JSON dump (`cxl-pool-metrics/v1`) of every series
    /// (None when metrics were never enabled).
    pub fn export_metrics_json(&self) -> Option<String> {
        self.fabric.metrics().map(|m| m.export_json())
    }

    /// Registers the pod-level metric catalog in a fixed, deterministic
    /// order: hosts, pool, domains, MHDs, links, audit, orchestrator.
    fn register_pod_metrics(&mut self) {
        let hosts = self.agents.len() as u16;
        let domains = self.fabric.topology().domains();
        let mhds = self.fabric.topology().mhds();
        let links: Vec<(LinkId, HostId, MhdId)> = self
            .fabric
            .topology()
            .links()
            .iter()
            .map(|l| (l.id, l.host, l.mhd))
            .collect();
        let domain_of: Vec<u16> = (0..mhds)
            .map(|m| self.fabric.topology().domain_of(MhdId(m)).0)
            .collect();
        let Some(rec) = self.fabric.metrics_mut() else {
            return;
        };
        let mut ids = PodMetricIds {
            host_served: Vec::with_capacity(hosts as usize),
            host_queue: Vec::with_capacity(hosts as usize),
            chan_stall: Vec::with_capacity(hosts as usize),
            chan_blocked: Vec::with_capacity(hosts as usize),
            pool_free: rec.gauge("pool/free_bytes", Labels::NONE),
            domain_free: Vec::with_capacity(domains as usize),
            domain_capacity: Vec::with_capacity(domains as usize),
            mhd_free: Vec::with_capacity(mhds as usize),
            link_util: Vec::with_capacity(links.len()),
            audit_violations: rec.counter("audit/violations", Labels::NONE),
            orch_migrations: rec.counter("orch/migrations", Labels::NONE),
            orch_failovers: rec.counter("orch/failovers", Labels::NONE),
            lifecycle_blackout: rec.histogram("lifecycle/blackout_ns", Labels::NONE),
            lifecycle_in_flight: rec.gauge("lifecycle/in_flight_migrations", Labels::NONE),
        };
        for h in 0..hosts {
            ids.host_served
                .push(rec.counter("host/served_ops", Labels::host(h)));
            ids.host_queue
                .push(rec.gauge("host/queue_depth", Labels::host(h)));
            ids.chan_stall
                .push(rec.counter("chan/stall_ns", Labels::host(h)));
            ids.chan_blocked
                .push(rec.counter("chan/blocked", Labels::host(h)));
        }
        for d in 0..domains {
            ids.domain_free
                .push(rec.gauge("domain/free_bytes", Labels::domain(d)));
            ids.domain_capacity
                .push(rec.gauge("domain/capacity_bytes", Labels::domain(d)));
        }
        for m in 0..mhds {
            ids.mhd_free.push(rec.gauge(
                "mhd/free_bytes",
                Labels::domain(domain_of[m as usize]).with_mhd(m),
            ));
        }
        for (id, host, mhd) in links {
            let labels = Labels::host(host.0)
                .with_domain(domain_of[mhd.0 as usize])
                .with_mhd(mhd.0);
            ids.link_util
                .push((id, rec.gauge("link/uplink_util", labels)));
        }
        self.metric_ids = Some(ids);
    }

    /// Refreshes every pod-level gauge and records one sample row per
    /// metric. Called from the pump loops after each quantum; a cheap
    /// no-op (one comparison) unless the sampling tick is due.
    fn sample_metrics(&mut self, now: Nanos) {
        let due = self.fabric.metrics().is_some_and(|m| m.tick_due(now));
        if !due {
            return;
        }
        let Some(ids) = self.metric_ids.take() else {
            return;
        };
        // Gather every reading first (immutable borrows), then write
        // them through the recorder in one pass.
        let horizon = self
            .fabric
            .metrics()
            .map_or(Nanos::from_millis(1), |m| m.config().interval);
        let served: Vec<f64> = self
            .agents
            .iter()
            .map(|a| a.stats().served as f64)
            .collect();
        let queue: Vec<f64> = self.agents.iter().map(|a| a.queue_depth() as f64).collect();
        let chan: Vec<shmem::channel::ChannelStats> =
            self.agents.iter().map(Agent::channel_stats).collect();
        let pool_free = self.fabric.free_capacity() as f64;
        let domain_free: Vec<f64> = (0..ids.domain_free.len() as u16)
            .map(|d| self.fabric.domain_free(DomainId(d)) as f64)
            .collect();
        let domain_cap: Vec<f64> = (0..ids.domain_capacity.len() as u16)
            .map(|d| self.fabric.domain_capacity(DomainId(d)) as f64)
            .collect();
        let mhd_free: Vec<f64> = (0..ids.mhd_free.len() as u16)
            .map(|m| self.fabric.mhd_free(MhdId(m)) as f64)
            .collect();
        let link_util: Vec<f64> = ids
            .link_util
            .iter()
            .map(|&(l, _)| self.fabric.uplink_utilization(l, horizon))
            .collect();
        let violations = self
            .fabric
            .audit_report()
            .map_or(0.0, |r| r.counts.total() as f64);
        let migrations = self.orch.migrations as f64;
        let failovers = self.orch.failover_log.len() as f64;
        let in_flight = self.lifecycle.in_flight as f64;
        if let Some(rec) = self.fabric.metrics_mut() {
            for (i, &id) in ids.host_served.iter().enumerate() {
                rec.gauge_set(id, served[i]);
            }
            for (i, &id) in ids.host_queue.iter().enumerate() {
                rec.gauge_set(id, queue[i]);
            }
            for (i, &id) in ids.chan_stall.iter().enumerate() {
                rec.gauge_set(id, chan[i].stall_ns as f64);
            }
            for (i, &id) in ids.chan_blocked.iter().enumerate() {
                rec.gauge_set(id, chan[i].blocked_events as f64);
            }
            rec.gauge_set(ids.pool_free, pool_free);
            for (i, &id) in ids.domain_free.iter().enumerate() {
                rec.gauge_set(id, domain_free[i]);
            }
            for (i, &id) in ids.domain_capacity.iter().enumerate() {
                rec.gauge_set(id, domain_cap[i]);
            }
            for (i, &id) in ids.mhd_free.iter().enumerate() {
                rec.gauge_set(id, mhd_free[i]);
            }
            for (i, &(_, id)) in ids.link_util.iter().enumerate() {
                rec.gauge_set(id, link_util[i]);
            }
            rec.gauge_set(ids.audit_violations, violations);
            rec.gauge_set(ids.orch_migrations, migrations);
            rec.gauge_set(ids.orch_failovers, failovers);
            rec.gauge_set(ids.lifecycle_in_flight, in_flight);
            rec.sample(now);
        }
        self.metric_ids = Some(ids);
    }

    /// Wraps one client-side pooled operation in a trace context: the
    /// next operation id is peeked (not allocated — allocation order is
    /// untouched), pushed as the recording context so every stage the
    /// call touches inherits `(op, kind)`, and a root span is emitted
    /// on the owner's CPU track. The root span is skipped when the call
    /// never allocated an op id (e.g. a local RX post or an early
    /// binding error), so it can't mislabel a later operation.
    fn traced_op<T>(
        &mut self,
        owner: HostId,
        kind: u8,
        name: &'static str,
        end_of: impl Fn(&T) -> Option<Nanos>,
        f: impl FnOnce(&mut Self) -> Result<T, PoolError>,
    ) -> Result<T, PoolError> {
        if !self.fabric.trace_enabled() {
            return f(self);
        }
        let op_hint = self.next_op;
        let start = self.agents[owner.0 as usize].clock();
        self.fabric.trace_push(op_hint, kind);
        let r = f(self);
        self.fabric.trace_pop();
        if self.next_op != op_hint {
            let clock = self.agents[owner.0 as usize].clock();
            let end = match &r {
                Ok(v) => end_of(v).unwrap_or(clock).max(clock),
                Err(_) => clock,
            };
            if let Some(tr) = self.fabric.trace_mut() {
                tr.span_for(Track::HostCpu(owner.0), name, op_hint, kind, start, end);
            }
        }
        r
    }

    /// Builds and wires the whole pod, performing initial device
    /// allocation for every host and device kind present.
    pub fn new(params: PodParams) -> PodSim {
        let mut config = PodConfig::new(params.hosts, params.mhds, params.lambda);
        if params.domains != 0 {
            config = config.with_domains(params.domains);
        }
        let mut fabric = Fabric::new(config);
        let all_hosts: Vec<HostId> = (0..params.hosts).map(HostId).collect();
        let mut agents: Vec<Agent> = all_hosts.iter().map(|&h| Agent::new(h)).collect();

        // Agent-to-agent mesh. Channels are failure-isolated (one MHD
        // each) so a pool-device failure breaks some channels, not all.
        let mut mesh_segs = Vec::new();
        for a in 0..params.hosts {
            for b in (a + 1)..params.hosts {
                let ch = shmem::channel::Channel::allocate_isolated(
                    &mut fabric,
                    HostId(a),
                    HostId(b),
                    params.ring_slots,
                )
                .expect("pod pool holds control rings");
                mesh_segs.push((a, b, ch.segments.0, ch.segments.1));
                agents[a as usize].add_link(
                    Peer::Host(HostId(b)),
                    Link {
                        tx: ch.ab.0,
                        rx: ch.ba.1,
                    },
                );
                agents[b as usize].add_link(
                    Peer::Host(HostId(a)),
                    Link {
                        tx: ch.ba.0,
                        rx: ch.ab.1,
                    },
                );
            }
        }

        // Orchestrator on host 0, linked to every agent.
        let mut orch = Orchestrator::new(HostId(0), params.policy, params.seed);
        let mut orch_segs = Vec::new();
        for h in 0..params.hosts {
            let ch = shmem::channel::Channel::allocate_isolated(
                &mut fabric,
                HostId(0),
                HostId(h),
                params.ring_slots,
            )
            .expect("pod pool holds orchestrator rings");
            orch_segs.push((h, ch.segments.0, ch.segments.1));
            orch.add_link(
                HostId(h),
                Link {
                    tx: ch.ab.0,
                    rx: ch.ba.1,
                },
            );
            agents[h as usize].add_link(
                Peer::Orchestrator,
                Link {
                    tx: ch.ba.0,
                    rx: ch.ab.1,
                },
            );
        }

        // Physical devices.
        let mut dev_attach = HashMap::new();
        let mut next_dev = 0u32;
        for &h in &params.nic_hosts {
            let id = DeviceId(next_dev);
            next_dev += 1;
            agents[h as usize]
                .nics
                .insert(id, Nic::new(id, HostId(h), NicConfig::default()));
            orch.register(id, DeviceKind::Nic, HostId(h));
            dev_attach.insert(id, HostId(h));
        }
        for &h in &params.ssd_hosts {
            let id = DeviceId(next_dev);
            next_dev += 1;
            agents[h as usize]
                .ssds
                .insert(id, Ssd::new(id, HostId(h), SsdConfig::default()));
            orch.register(id, DeviceKind::Ssd, HostId(h));
            dev_attach.insert(id, HostId(h));
        }
        for &h in &params.accel_hosts {
            let id = DeviceId(next_dev);
            next_dev += 1;
            agents[h as usize].accels.insert(
                id,
                Accelerator::new(id, HostId(h), pcie_sim::accel::AccelConfig::default()),
            );
            orch.register(id, DeviceKind::Accel, HostId(h));
            dev_attach.insert(id, HostId(h));
        }

        // Per-host I/O buffer segments, shared pod-wide so any device's
        // attach host can DMA them.
        let mut io_base = Vec::with_capacity(params.hosts as usize);
        let mut io_segs = Vec::with_capacity(params.hosts as usize);
        for _ in 0..params.hosts {
            let seg = fabric
                .alloc_shared(&all_hosts, params.io_slots * IO_SLOT)
                .expect("pod pool holds I/O buffers");
            io_base.push(seg.base());
            io_segs.push(seg.id());
        }

        let mut pod = PodSim {
            fabric,
            agents,
            orch,
            io_base,
            io_slots: params.io_slots,
            next_io: vec![0; params.hosts as usize],
            next_op: 1,
            dev_attach,
            ring_slots: params.ring_slots,
            mesh_segs,
            orch_segs,
            io_segs,
            metric_ids: None,
            lifecycle: LifecycleStats::default(),
        };

        // Initial allocation: give every host a binding for each kind
        // that exists in the pod, then let the Assign messages land.
        let kinds: Vec<DeviceKind> = [
            (!params.nic_hosts.is_empty()).then_some(DeviceKind::Nic),
            (!params.ssd_hosts.is_empty()).then_some(DeviceKind::Ssd),
            (!params.accel_hosts.is_empty()).then_some(DeviceKind::Accel),
        ]
        .into_iter()
        .flatten()
        .collect();
        for h in 0..params.hosts {
            for &k in &kinds {
                let _ = pod.orch.allocate(&mut pod.fabric, HostId(h), k);
            }
        }
        pod.run_control(Nanos::from_micros(200));
        pod
    }

    /// Marks a local-fast-path device failure on the owner's CPU track
    /// (remote failures are marked by the executing agent instead).
    fn trace_dev_failed(&mut self, owner: HostId, dev: DeviceId, at: Nanos) {
        if let Some(tr) = self.fabric.trace_mut() {
            tr.instant_note(
                Track::HostCpu(owner.0),
                "dev/failed",
                at,
                &format!("{dev:?}"),
            );
        }
    }

    /// The latest clock across agents and orchestrator — "now" for the
    /// pod as a whole.
    pub fn time(&self) -> Nanos {
        let agents = self
            .agents
            .iter()
            .map(|a| a.clock())
            .max()
            .unwrap_or(Nanos::ZERO);
        agents.max(self.orch.clock())
    }

    /// Where a device is physically attached.
    pub fn attach_of(&self, dev: DeviceId) -> Option<HostId> {
        self.dev_attach.get(&dev).copied()
    }

    /// Device kinds with at least one registered device in the pod
    /// (load generators validate tenant mixes against this).
    pub fn kinds_available(&self) -> Vec<DeviceKind> {
        [DeviceKind::Nic, DeviceKind::Ssd, DeviceKind::Accel]
            .into_iter()
            .filter(|&k| !self.orch.devices_of(k).is_empty())
            .collect()
    }

    /// Feeds a host-load observation into the orchestrator, as the
    /// agent's periodic `HostLoad` report would. Load generators use
    /// this to close the control loop: the orchestrator's balance pass
    /// migrates the heaviest *reported* user off a hot device.
    pub fn report_host_load(&mut self, host: HostId, load: u8) {
        self.orch.set_host_load(host, load);
    }

    /// One orchestrator load-balancing pass (see
    /// [`Orchestrator::balance`]); returns migrations performed.
    pub fn rebalance(&mut self, spread_pct: u8) -> u64 {
        self.orch.balance(&mut self.fabric, spread_pct)
    }

    /// `host`'s current binding for `kind` (as known by its agent).
    pub fn binding(&self, host: HostId, kind: DeviceKind) -> Option<DeviceId> {
        self.agents[host.0 as usize].assigned.get(&kind).copied()
    }

    /// Reserves a fresh operation id (for modules that build their own
    /// forwarded submissions, like NIC bonding).
    pub fn take_op_id(&mut self) -> u64 {
        let op = self.next_op;
        self.next_op += 1;
        op
    }

    /// Records one migration blackout window — the single accounting
    /// point shared by connection migration and whole-tenant lifecycle
    /// migration: the pod-wide blackout histogram, the
    /// `lifecycle/blackout_ns` metric (when the plane is on) and a
    /// `lifecycle/migrate` span on the orchestrator host's CPU track
    /// (when tracing). Observation-only: no simulated clock moves.
    pub(crate) fn record_migration_window(
        &mut self,
        op: u64,
        quiesced_at: Nanos,
        resumed_at: Nanos,
    ) {
        let blackout = resumed_at.saturating_sub(quiesced_at);
        self.lifecycle.blackout.record_nanos(blackout);
        let orch_host = self.orch.host.0;
        if let Some(tr) = self.fabric.trace_mut() {
            tr.span_for(
                Track::HostCpu(orch_host),
                "lifecycle/migrate",
                op,
                trace::KIND_NONE,
                quiesced_at,
                resumed_at,
            );
        }
        let hist = self.metric_ids.as_ref().map(|ids| ids.lifecycle_blackout);
        if let (Some(id), Some(rec)) = (hist, self.fabric.metrics_mut()) {
            rec.observe(id, blackout.as_nanos());
        }
    }

    /// Grabs the next I/O buffer slot for `host`.
    pub fn io_buf(&mut self, host: HostId) -> u64 {
        let h = host.0 as usize;
        let slot = self.next_io[h] % self.io_slots;
        self.next_io[h] += 1;
        self.io_base[h] + slot * IO_SLOT
    }

    /// Runs every agent and the orchestrator forward for `span` of
    /// simulated time (from the pod's current time).
    ///
    /// Agents are pumped in small interleaved quanta so their clocks
    /// advance together: the fabric's FIFO pipe timelines assume
    /// roughly monotonic arrivals, and letting one actor simulate far
    /// ahead would make everyone else queue behind its bookings.
    pub fn run_control(&mut self, span: Nanos) {
        const QUANTUM: Nanos = Nanos(2_000);
        let until = self.time() + span;
        let mut step = self
            .agents
            .iter()
            .map(|a| a.clock())
            .min()
            .unwrap_or(Nanos::ZERO)
            .min(self.orch.clock());
        while step < until {
            step = (step + QUANTUM).min(until);
            for a in &mut self.agents {
                a.pump(&mut self.fabric, step);
            }
            self.orch.pump(&mut self.fabric, step);
            self.sample_metrics(step);
        }
    }

    /// Injects a NIC failure.
    pub fn fail_nic(&mut self, dev: DeviceId) {
        for a in &mut self.agents {
            if let Some(nic) = a.nics.get_mut(&dev) {
                nic.fail();
            }
        }
    }

    /// Repairs a NIC and tells the orchestrator.
    pub fn repair_nic(&mut self, dev: DeviceId) {
        for a in &mut self.agents {
            if let Some(nic) = a.nics.get_mut(&dev) {
                nic.restore();
            }
        }
        self.orch.on_repair(dev);
    }

    /// Rebuilds every control channel and I/O segment that was backed
    /// by a failed MHD (§5, "highly-available CXL pods"): new rings are
    /// allocated on surviving devices and both endpoints are swapped.
    /// Protocol state on the dead rings is abandoned — outstanding
    /// forwarded operations time out and are retried by callers, which
    /// is exactly the software-failover story the paper argues is
    /// tractable. Returns the number of channels rebuilt.
    ///
    /// Call after `fabric.topology_mut().fail_mhd(...)`.
    pub fn recover_pool_failure(&mut self, mhd: cxl_fabric::MhdId) -> usize {
        let uses_dead = |fabric: &cxl_fabric::Fabric, id: cxl_fabric::SegmentId| {
            fabric
                .segment(id)
                .map(|s| s.ways().contains(&mhd))
                .unwrap_or(false)
        };
        let mut rebuilt = 0;

        // Mesh channels.
        let mesh: Vec<(u16, u16, cxl_fabric::SegmentId, cxl_fabric::SegmentId)> =
            self.mesh_segs.clone();
        for (i, (a, b, s_ab, s_ba)) in mesh.into_iter().enumerate() {
            if !uses_dead(&self.fabric, s_ab) && !uses_dead(&self.fabric, s_ba) {
                continue;
            }
            let _ = self.fabric.free_segment(s_ab);
            let _ = self.fabric.free_segment(s_ba);
            let ch = shmem::channel::Channel::allocate_isolated(
                &mut self.fabric,
                HostId(a),
                HostId(b),
                self.ring_slots,
            )
            .expect("survivors hold replacement rings");
            self.mesh_segs[i] = (a, b, ch.segments.0, ch.segments.1);
            self.agents[a as usize].replace_link(
                Peer::Host(HostId(b)),
                Link {
                    tx: ch.ab.0,
                    rx: ch.ba.1,
                },
            );
            self.agents[b as usize].replace_link(
                Peer::Host(HostId(a)),
                Link {
                    tx: ch.ba.0,
                    rx: ch.ab.1,
                },
            );
            rebuilt += 1;
        }

        // Orchestrator channels.
        let orch: Vec<(u16, cxl_fabric::SegmentId, cxl_fabric::SegmentId)> = self.orch_segs.clone();
        for (i, (h, s_to, s_from)) in orch.into_iter().enumerate() {
            if !uses_dead(&self.fabric, s_to) && !uses_dead(&self.fabric, s_from) {
                continue;
            }
            let _ = self.fabric.free_segment(s_to);
            let _ = self.fabric.free_segment(s_from);
            let ch = shmem::channel::Channel::allocate_isolated(
                &mut self.fabric,
                HostId(0),
                HostId(h),
                self.ring_slots,
            )
            .expect("survivors hold replacement rings");
            self.orch_segs[i] = (h, ch.segments.0, ch.segments.1);
            self.orch.replace_link(
                HostId(h),
                Link {
                    tx: ch.ab.0,
                    rx: ch.ba.1,
                },
            );
            self.agents[h as usize].replace_link(
                Peer::Orchestrator,
                Link {
                    tx: ch.ba.0,
                    rx: ch.ab.1,
                },
            );
            rebuilt += 1;
        }

        // I/O buffer segments: interleaved, so any that touch the dead
        // MHD move wholesale (in-flight buffer contents are lost — pool
        // memory is volatile; the datapath retries).
        let all_hosts: Vec<HostId> = (0..self.agents.len() as u16).map(HostId).collect();
        for h in 0..self.io_segs.len() {
            if !uses_dead(&self.fabric, self.io_segs[h]) {
                continue;
            }
            let _ = self.fabric.free_segment(self.io_segs[h]);
            let seg = self
                .fabric
                .alloc_shared(&all_hosts, self.io_slots * IO_SLOT)
                .expect("survivors hold replacement I/O buffers");
            self.io_base[h] = seg.base();
            self.io_segs[h] = seg.id();
            self.next_io[h] = 0;
            rebuilt += 1;
        }
        rebuilt
    }

    /// Whole-domain outage recovery (§5, multi-MHD failure domains):
    /// rebuilds every control channel and I/O segment backed by *any*
    /// MHD of the failed domain, exactly as
    /// [`PodSim::recover_pool_failure`] does for a single device.
    /// Call after `fabric.topology_mut().fail_domain(...)` — or use
    /// [`PodSim::fail_domain`], which does both. Returns the number of
    /// channels/segments rebuilt.
    pub fn recover_domain_failure(&mut self, domain: cxl_fabric::DomainId) -> usize {
        let members = self.fabric.topology().mhds_in_domain(domain);
        members
            .into_iter()
            .map(|m| self.recover_pool_failure(m))
            .sum()
    }

    /// Fails every MHD in `domain` (chassis power loss) and immediately
    /// rebuilds the affected channels and I/O segments on survivors.
    /// Returns the number rebuilt.
    pub fn fail_domain(&mut self, domain: cxl_fabric::DomainId) -> usize {
        self.fabric.topology_mut().fail_domain(domain);
        self.recover_domain_failure(domain)
    }

    /// Restores every MHD in `domain`.
    pub fn restore_domain(&mut self, domain: cxl_fabric::DomainId) {
        self.fabric.topology_mut().restore_domain(domain);
    }

    /// Injects an SSD failure.
    pub fn fail_ssd(&mut self, dev: DeviceId) {
        for a in &mut self.agents {
            if let Some(ssd) = a.ssds.get_mut(&dev) {
                ssd.fail();
            }
        }
    }

    /// Repairs an SSD and tells the orchestrator.
    pub fn repair_ssd(&mut self, dev: DeviceId) {
        for a in &mut self.agents {
            if let Some(ssd) = a.ssds.get_mut(&dev) {
                ssd.restore();
            }
        }
        self.orch.on_repair(dev);
    }

    /// Injects an accelerator failure.
    pub fn fail_accel(&mut self, dev: DeviceId) {
        for a in &mut self.agents {
            if let Some(acc) = a.accels.get_mut(&dev) {
                acc.fail();
            }
        }
    }

    /// Repairs an accelerator and tells the orchestrator.
    pub fn repair_accel(&mut self, dev: DeviceId) {
        for a in &mut self.agents {
            if let Some(acc) = a.accels.get_mut(&dev) {
                acc.restore();
            }
        }
        self.orch.on_repair(dev);
    }

    // -----------------------------------------------------------------
    // Virtual NIC
    // -----------------------------------------------------------------

    /// Sends `payload` through `owner`'s pooled NIC. Stages the payload
    /// in a shared I/O buffer, then takes the local fast path or
    /// forwards the submission to the attach host. Returns the transmit
    /// completion.
    pub fn vnic_send(
        &mut self,
        owner: HostId,
        payload: &[u8],
        deadline: Nanos,
    ) -> Result<OpResult, PoolError> {
        self.traced_op(
            owner,
            trace::KIND_NIC,
            "op/vnic_send",
            |r: &OpResult| Some(r.at),
            |pod| pod.vnic_send_inner(owner, payload, deadline),
        )
    }

    fn vnic_send_inner(
        &mut self,
        owner: HostId,
        payload: &[u8],
        deadline: Nanos,
    ) -> Result<OpResult, PoolError> {
        let dev = self
            .binding(owner, DeviceKind::Nic)
            .ok_or(PoolError::NotAssigned(DeviceKind::Nic))?;
        let attach = self
            .attach_of(dev)
            .ok_or(PoolError::NoDevice(DeviceKind::Nic))?;
        let buf = self.io_buf(owner);
        let now = self.agents[owner.0 as usize].clock();
        let staged = self.fabric.nt_store(now, owner, buf, payload)?;
        self.agents[owner.0 as usize].advance_clock(now + Nanos(50));

        if attach == owner {
            // Fast path: local doorbell + transmit.
            let agent = &mut self.agents[owner.0 as usize];
            let Some(nic) = agent.nics.get_mut(&dev) else {
                agent.report_failure(dev);
                self.trace_dev_failed(owner, dev, now);
                return Err(PoolError::Device(pcie_sim::DeviceError::Failed(dev)));
            };
            let t = staged + nic.doorbell_cost();
            nic.ring_doorbell();
            if let Some(tr) = self.fabric.trace_mut() {
                tr.instant(Track::HostCpu(owner.0), "dev/doorbell", t);
            }
            let frame =
                match nic.transmit(&mut self.fabric, t, BufRef::Pool(buf), payload.len() as u32) {
                    Ok(f) => f,
                    Err(e) => {
                        // A failed local device is reported upstream just
                        // like a remote one.
                        agent.report_failure(dev);
                        self.trace_dev_failed(owner, dev, t);
                        return Err(PoolError::Device(e));
                    }
                };
            let at = frame.wire_exit;
            agent.out_frames.push((dev, frame));
            agent.advance_clock(t);
            let op = self.next_op;
            self.next_op += 1;
            return Ok(OpResult {
                op,
                at,
                local: true,
            });
        }

        let op = self.next_op;
        self.next_op += 1;
        let msg = Msg::TxSubmit {
            op,
            dev,
            buf,
            len: payload.len() as u32,
        };
        // Make sure the submit is not forwarded before the payload's NT
        // store has landed.
        self.agents[owner.0 as usize].advance_clock(staged);
        self.agents[owner.0 as usize].send_to(&mut self.fabric, Peer::Host(attach), &msg)?;
        self.await_completion(owner, attach, op, deadline)
            .map(|c| OpResult {
                op,
                at: c.at,
                local: false,
            })
    }

    /// Sends a batch of payloads through `owner`'s pooled NIC with one
    /// completion wait for the whole batch (doorbell batching): all
    /// payloads are staged and all submissions forwarded before the
    /// caller starts polling for completions. Amortizes the per-op
    /// polling overhead of the forwarded path.
    pub fn vnic_send_batch(
        &mut self,
        owner: HostId,
        payloads: &[&[u8]],
        deadline: Nanos,
    ) -> Result<Vec<OpResult>, PoolError> {
        let dev = self
            .binding(owner, DeviceKind::Nic)
            .ok_or(PoolError::NotAssigned(DeviceKind::Nic))?;
        let attach = self
            .attach_of(dev)
            .ok_or(PoolError::NoDevice(DeviceKind::Nic))?;
        if attach == owner {
            // Local: the fast path is already one doorbell per submit.
            return payloads
                .iter()
                .map(|p| self.vnic_send(owner, p, deadline))
                .collect();
        }
        // Stage and submit everything first.
        let mut ops = Vec::with_capacity(payloads.len());
        for payload in payloads {
            let buf = self.io_buf(owner);
            let now = self.agents[owner.0 as usize].clock();
            let staged = self.fabric.nt_store(now, owner, buf, payload)?;
            self.agents[owner.0 as usize].advance_clock(staged);
            let op = self.next_op;
            self.next_op += 1;
            let msg = Msg::TxSubmit {
                op,
                dev,
                buf,
                len: payload.len() as u32,
            };
            self.agents[owner.0 as usize].send_to(&mut self.fabric, Peer::Host(attach), &msg)?;
            ops.push(op);
        }
        // One polling phase covers the whole batch.
        let mut out = Vec::with_capacity(ops.len());
        for op in ops {
            let c = self.await_completion(owner, attach, op, deadline)?;
            out.push(OpResult {
                op,
                at: c.at,
                local: false,
            });
        }
        Ok(out)
    }

    /// Posts one RX buffer on `owner`'s pooled NIC; returns the buffer's
    /// pool address.
    pub fn vnic_post_rx(&mut self, owner: HostId, deadline: Nanos) -> Result<u64, PoolError> {
        self.traced_op(
            owner,
            trace::KIND_NIC,
            "op/vnic_post_rx",
            |_| None,
            |pod| pod.vnic_post_rx_inner(owner, deadline),
        )
    }

    fn vnic_post_rx_inner(&mut self, owner: HostId, deadline: Nanos) -> Result<u64, PoolError> {
        let dev = self
            .binding(owner, DeviceKind::Nic)
            .ok_or(PoolError::NotAssigned(DeviceKind::Nic))?;
        let attach = self
            .attach_of(dev)
            .ok_or(PoolError::NoDevice(DeviceKind::Nic))?;
        let buf = self.io_buf(owner);
        if attach == owner {
            let agent = &mut self.agents[owner.0 as usize];
            let nic = agent
                .nics
                .get_mut(&dev)
                .ok_or(PoolError::Device(pcie_sim::DeviceError::Failed(dev)))?;
            nic.post_rx(BufRef::Pool(buf), IO_SLOT as u32)?;
            agent.note_local_rx(dev);
            return Ok(buf);
        }
        let op = self.next_op;
        self.next_op += 1;
        let msg = Msg::RxPost {
            op,
            dev,
            buf,
            len: IO_SLOT as u32,
        };
        self.agents[owner.0 as usize].send_to(&mut self.fabric, Peer::Host(attach), &msg)?;
        self.await_completion(owner, attach, op, deadline)?;
        Ok(buf)
    }

    /// A frame arrives from the wire at physical NIC `dev`; delivers it
    /// into the next posted RX buffer and notifies the buffer's owner
    /// (locally, or with an `RxDone` over the channel). Returns
    /// `(buffer, dma_done)` or `None` on drop.
    pub fn deliver_frame(
        &mut self,
        dev: DeviceId,
        bytes: &[u8],
    ) -> Result<Option<(BufRef, Nanos)>, PoolError> {
        let attach = self
            .attach_of(dev)
            .ok_or(PoolError::NoDevice(DeviceKind::Nic))?;
        let agent = &mut self.agents[attach.0 as usize];
        let r = agent.deliver_frame(&mut self.fabric, dev, bytes)?;
        Ok(r.map(|c| (c.buf, c.done)))
    }

    /// Polls `owner`'s RX completion inbox, pumping the control plane
    /// until an event arrives or `deadline` passes.
    pub fn vnic_poll_rx(
        &mut self,
        owner: HostId,
        deadline: Nanos,
    ) -> Option<crate::agent::RxEvent> {
        loop {
            let inbox = &mut self.agents[owner.0 as usize].rx_inbox;
            if !inbox.is_empty() {
                return Some(inbox.remove(0));
            }
            if self.time() > deadline {
                return None;
            }
            self.run_control(Nanos(2_000));
        }
    }

    /// `owner` reads `len` bytes of RX payload from pool address `addr`
    /// with proper software coherence (invalidate then load).
    pub fn read_rx_payload(
        &mut self,
        owner: HostId,
        addr: u64,
        len: usize,
        not_before: Nanos,
    ) -> Result<(Vec<u8>, Nanos), PoolError> {
        let now = self.agents[owner.0 as usize].clock().max(not_before);
        let t = self.fabric.invalidate(now, owner, addr, len as u64);
        let mut buf = vec![0u8; len];
        let t = self.fabric.load(t, owner, addr, &mut buf)?;
        self.agents[owner.0 as usize].advance_clock(t);
        Ok((buf, t))
    }

    // -----------------------------------------------------------------
    // Virtual SSD
    // -----------------------------------------------------------------

    /// Reads `blocks` blocks from `owner`'s pooled SSD into a fresh I/O
    /// buffer; returns `(buffer_addr, result)`.
    pub fn vssd_read(
        &mut self,
        owner: HostId,
        lba: u64,
        blocks: u32,
        deadline: Nanos,
    ) -> Result<(u64, OpResult), PoolError> {
        self.traced_op(
            owner,
            trace::KIND_SSD,
            "op/vssd_read",
            |(_, r): &(u64, OpResult)| Some(r.at),
            |pod| {
                let dev = pod
                    .binding(owner, DeviceKind::Ssd)
                    .ok_or(PoolError::NotAssigned(DeviceKind::Ssd))?;
                let buf = pod.io_buf(owner);
                let r = pod.ssd_op_on(owner, dev, lba, blocks, buf, false, deadline)?;
                Ok((buf, r))
            },
        )
    }

    /// Writes `blocks` blocks (already staged at `buf`) to `owner`'s
    /// pooled SSD.
    pub fn vssd_write(
        &mut self,
        owner: HostId,
        lba: u64,
        blocks: u32,
        buf: u64,
        deadline: Nanos,
    ) -> Result<OpResult, PoolError> {
        self.traced_op(
            owner,
            trace::KIND_SSD,
            "op/vssd_write",
            |r: &OpResult| Some(r.at),
            |pod| {
                let dev = pod
                    .binding(owner, DeviceKind::Ssd)
                    .ok_or(PoolError::NotAssigned(DeviceKind::Ssd))?;
                pod.ssd_op_on(owner, dev, lba, blocks, buf, true, deadline)
            },
        )
    }

    /// Explicit-device SSD operation (used by striping, which spans
    /// several SSDs at once).
    #[allow(clippy::too_many_arguments)]
    pub fn ssd_op_on(
        &mut self,
        owner: HostId,
        dev: DeviceId,
        lba: u64,
        blocks: u32,
        buf: u64,
        write: bool,
        deadline: Nanos,
    ) -> Result<OpResult, PoolError> {
        match self.ssd_submit_on(owner, dev, lba, blocks, buf, write)? {
            Submitted::Local(r) => Ok(r),
            Submitted::Remote { op, attach } => self
                .await_completion(owner, attach, op, deadline)
                .map(|c| OpResult {
                    op,
                    at: c.at,
                    local: false,
                }),
        }
    }

    /// Submits an SSD operation without waiting for its completion, so
    /// callers can keep several devices busy in parallel (striping).
    /// Pair with [`PodSim::await_submitted`].
    pub fn ssd_submit_on(
        &mut self,
        owner: HostId,
        dev: DeviceId,
        lba: u64,
        blocks: u32,
        buf: u64,
        write: bool,
    ) -> Result<Submitted, PoolError> {
        let attach = self
            .attach_of(dev)
            .ok_or(PoolError::NoDevice(DeviceKind::Ssd))?;
        if attach == owner {
            let agent = &mut self.agents[owner.0 as usize];
            let now = agent.clock();
            let Some(ssd) = agent.ssds.get_mut(&dev) else {
                agent.report_failure(dev);
                self.trace_dev_failed(owner, dev, now);
                return Err(PoolError::Device(pcie_sim::DeviceError::Failed(dev)));
            };
            let result = if write {
                ssd.write(&mut self.fabric, now, lba, blocks as u64, BufRef::Pool(buf))
            } else {
                ssd.read(&mut self.fabric, now, lba, blocks as u64, BufRef::Pool(buf))
            };
            let at = match result {
                Ok(t) => t,
                Err(e) => {
                    agent.report_failure(dev);
                    self.trace_dev_failed(owner, dev, now);
                    return Err(PoolError::Device(e));
                }
            };
            let op = self.next_op;
            self.next_op += 1;
            return Ok(Submitted::Local(OpResult {
                op,
                at,
                local: true,
            }));
        }
        let op = self.next_op;
        self.next_op += 1;
        let msg = if write {
            Msg::SsdWrite {
                op,
                dev,
                lba,
                blocks,
                buf,
            }
        } else {
            Msg::SsdRead {
                op,
                dev,
                lba,
                blocks,
                buf,
            }
        };
        self.agents[owner.0 as usize].send_to(&mut self.fabric, Peer::Host(attach), &msg)?;
        Ok(Submitted::Remote { op, attach })
    }

    /// Waits for a [`Submitted`] operation to complete.
    pub fn await_submitted(
        &mut self,
        owner: HostId,
        submitted: Submitted,
        deadline: Nanos,
    ) -> Result<OpResult, PoolError> {
        match submitted {
            Submitted::Local(r) => Ok(r),
            Submitted::Remote { op, attach } => self
                .await_completion(owner, attach, op, deadline)
                .map(|c| OpResult {
                    op,
                    at: c.at,
                    local: false,
                }),
        }
    }

    // -----------------------------------------------------------------
    // Virtual accelerator
    // -----------------------------------------------------------------

    /// Runs an offload job on `owner`'s pooled accelerator: `input`
    /// bytes are staged into a fresh buffer, processed, and the output
    /// lands in a second buffer whose address is returned.
    pub fn vaccel_run(
        &mut self,
        owner: HostId,
        input: &[u8],
        deadline: Nanos,
    ) -> Result<(u64, OpResult), PoolError> {
        self.traced_op(
            owner,
            trace::KIND_ACCEL,
            "op/vaccel_run",
            |(_, r): &(u64, OpResult)| Some(r.at),
            |pod| pod.vaccel_run_inner(owner, input, deadline),
        )
    }

    fn vaccel_run_inner(
        &mut self,
        owner: HostId,
        input: &[u8],
        deadline: Nanos,
    ) -> Result<(u64, OpResult), PoolError> {
        let dev = self
            .binding(owner, DeviceKind::Accel)
            .ok_or(PoolError::NotAssigned(DeviceKind::Accel))?;
        let inbuf = self.io_buf(owner);
        let outbuf = self.io_buf(owner);
        let now = self.agents[owner.0 as usize].clock();
        let staged = self.fabric.nt_store(now, owner, inbuf, input)?;
        self.agents[owner.0 as usize].advance_clock(staged);
        let r = self.accel_run_on(owner, dev, inbuf, input.len() as u32, outbuf, deadline)?;
        Ok((outbuf, r))
    }

    /// Explicit-device accelerator job on already-staged input.
    pub fn accel_run_on(
        &mut self,
        owner: HostId,
        dev: DeviceId,
        inbuf: u64,
        len: u32,
        outbuf: u64,
        deadline: Nanos,
    ) -> Result<OpResult, PoolError> {
        let attach = self
            .attach_of(dev)
            .ok_or(PoolError::NoDevice(DeviceKind::Accel))?;
        if attach == owner {
            let agent = &mut self.agents[owner.0 as usize];
            let now = agent.clock();
            let Some(acc) = agent.accels.get_mut(&dev) else {
                agent.report_failure(dev);
                self.trace_dev_failed(owner, dev, now);
                return Err(PoolError::Device(pcie_sim::DeviceError::Failed(dev)));
            };
            let at = match acc.offload(
                &mut self.fabric,
                now,
                BufRef::Pool(inbuf),
                len,
                BufRef::Pool(outbuf),
            ) {
                Ok(t) => t,
                Err(e) => {
                    agent.report_failure(dev);
                    self.trace_dev_failed(owner, dev, now);
                    return Err(PoolError::Device(e));
                }
            };
            let op = self.next_op;
            self.next_op += 1;
            return Ok(OpResult {
                op,
                at,
                local: true,
            });
        }
        let op = self.next_op;
        self.next_op += 1;
        let msg = Msg::AccelRun {
            op,
            dev,
            inbuf,
            len,
            outbuf,
        };
        self.agents[owner.0 as usize].send_to(&mut self.fabric, Peer::Host(attach), &msg)?;
        self.await_completion(owner, attach, op, deadline)
            .map(|c| OpResult {
                op,
                at: c.at,
                local: false,
            })
    }

    // -----------------------------------------------------------------
    // Internals
    // -----------------------------------------------------------------

    /// Drives the attach and owner agents (and the orchestrator) until
    /// the completion for `op` arrives at the owner or `deadline`
    /// passes.
    fn await_completion(
        &mut self,
        owner: HostId,
        attach: HostId,
        op: u64,
        deadline: Nanos,
    ) -> Result<Completion, PoolError> {
        const QUANTUM: Nanos = Nanos(2_000);
        loop {
            if let Some(c) = self.agents[owner.0 as usize].completions.remove(&op) {
                if c.status == 0 {
                    return Ok(c);
                }
                let dev = self
                    .binding(owner, DeviceKind::Nic)
                    .unwrap_or(DeviceId(u32::MAX));
                return Err(PoolError::RemoteFailed { op, dev });
            }
            let now = self.time();
            if now > deadline {
                return Err(PoolError::Timeout { op });
            }
            let until = now + QUANTUM;
            self.agents[attach.0 as usize].pump(&mut self.fabric, until);
            self.agents[owner.0 as usize].pump(&mut self.fabric, until);
            self.orch.pump(&mut self.fabric, until);
            self.sample_metrics(until);
        }
    }

    /// Drains the frames transmitted by NIC `dev` since the last call.
    pub fn take_frames(&mut self, dev: DeviceId) -> Vec<TxFrame> {
        let Some(attach) = self.attach_of(dev) else {
            return Vec::new();
        };
        let agent = &mut self.agents[attach.0 as usize];
        let mut out = Vec::new();
        let mut keep = Vec::new();
        for (d, f) in agent.out_frames.drain(..) {
            if d == dev {
                out.push(f);
            } else {
                keep.push((d, f));
            }
        }
        agent.out_frames = keep;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deadline() -> Nanos {
        Nanos::from_millis(50)
    }

    #[test]
    fn pod_initial_allocation_binds_every_host() {
        let pod = PodSim::new(PodParams::new(4, 2));
        for h in 0..4 {
            assert!(
                pod.binding(HostId(h), DeviceKind::Nic).is_some(),
                "host {h} unbound"
            );
        }
    }

    #[test]
    fn local_send_takes_fast_path() {
        let mut pod = PodSim::new(PodParams::new(4, 2));
        // Host 0 has a local NIC and local-first policy: local binding.
        let dev = pod.binding(HostId(0), DeviceKind::Nic).unwrap();
        assert_eq!(pod.attach_of(dev), Some(HostId(0)));
        let r = pod
            .vnic_send(HostId(0), &[1u8; 256], deadline())
            .expect("send");
        assert!(r.local);
        let frames = pod.take_frames(dev);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].bytes, vec![1u8; 256]);
    }

    #[test]
    fn remote_send_is_forwarded_and_carries_bytes() {
        let mut pod = PodSim::new(PodParams::new(4, 2));
        // Host 3 has no local NIC: its binding is remote.
        let dev = pod.binding(HostId(3), DeviceKind::Nic).unwrap();
        let attach = pod.attach_of(dev).unwrap();
        assert_ne!(attach, HostId(3));
        let payload: Vec<u8> = (0..900u32).map(|i| i as u8).collect();
        let r = pod
            .vnic_send(HostId(3), &payload, deadline())
            .expect("send");
        assert!(!r.local);
        let frames = pod.take_frames(dev);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].bytes, payload, "remote TX must carry exact bytes");
    }

    #[test]
    fn remote_send_latency_is_microseconds() {
        let mut pod = PodSim::new(PodParams::new(4, 2));
        let t0 = pod.time();
        let _ = pod
            .vnic_send(HostId(3), &[0u8; 128], deadline())
            .expect("send");
        let elapsed = pod.time() - t0;
        // Forwarded op: channel + agent poll + DMA + reply. Must be
        // microseconds, not milliseconds.
        assert!(
            elapsed < Nanos::from_micros(50),
            "remote send took {elapsed}"
        );
    }

    #[test]
    fn rx_roundtrip_through_pool_buffer() {
        let mut pod = PodSim::new(PodParams::new(4, 2));
        let dev = pod.binding(HostId(3), DeviceKind::Nic).unwrap();
        let buf = pod.vnic_post_rx(HostId(3), deadline()).expect("post");
        let frame: Vec<u8> = (0..500u32).map(|i| (i * 3) as u8).collect();
        let (got_buf, done) = pod
            .deliver_frame(dev, &frame)
            .expect("deliver")
            .expect("not dropped");
        assert_eq!(got_buf.addr(), buf);
        let (payload, _) = pod
            .read_rx_payload(HostId(3), buf, frame.len(), done)
            .expect("read");
        assert_eq!(payload, frame);
    }

    #[test]
    fn remote_rx_completion_is_forwarded_to_owner() {
        let mut pod = PodSim::new(PodParams::new(4, 2));
        let owner = HostId(3);
        let dev = pod.binding(owner, DeviceKind::Nic).unwrap();
        assert_ne!(pod.attach_of(dev), Some(owner));
        let buf = pod.vnic_post_rx(owner, deadline()).expect("post");
        let frame: Vec<u8> = (0..700u32).map(|i| (i * 5) as u8).collect();
        pod.deliver_frame(dev, &frame)
            .expect("deliver")
            .expect("no drop");
        // The owner learns about the frame through its inbox (RxDone
        // over the channel), not through the deliver_frame return.
        let ev = pod
            .vnic_poll_rx(owner, Nanos::from_millis(50))
            .expect("RxDone arrives");
        assert_eq!(ev.buf, buf);
        assert_eq!(ev.len as usize, frame.len());
        let (payload, _) = pod
            .read_rx_payload(owner, ev.buf, ev.len as usize, ev.at)
            .expect("read");
        assert_eq!(payload, frame);
    }

    #[test]
    fn local_rx_completion_lands_in_local_inbox() {
        let mut pod = PodSim::new(PodParams::new(4, 2));
        let owner = HostId(0);
        let dev = pod.binding(owner, DeviceKind::Nic).unwrap();
        assert_eq!(pod.attach_of(dev), Some(owner));
        let buf = pod.vnic_post_rx(owner, deadline()).expect("post");
        pod.deliver_frame(dev, &[1u8; 64])
            .expect("deliver")
            .expect("no drop");
        let ev = pod
            .vnic_poll_rx(owner, Nanos::from_millis(10))
            .expect("local event");
        assert_eq!(ev.buf, buf);
    }

    #[test]
    fn failover_rebinds_to_surviving_nic() {
        let mut pod = PodSim::new(PodParams::new(4, 2));
        let dev = pod.binding(HostId(3), DeviceKind::Nic).unwrap();
        pod.fail_nic(dev);
        // The send fails (remote device down).
        let err = pod
            .vnic_send(HostId(3), &[0u8; 64], deadline())
            .unwrap_err();
        assert!(matches!(
            err,
            PoolError::RemoteFailed { .. } | PoolError::Device(_)
        ));
        // The agent's failure notice reaches the orchestrator, which
        // reassigns host 3 to the surviving NIC.
        pod.run_control(Nanos::from_millis(1));
        let newdev = pod.binding(HostId(3), DeviceKind::Nic).unwrap();
        assert_ne!(newdev, dev, "binding must move off the dead NIC");
        let r = pod
            .vnic_send(HostId(3), &[5u8; 64], deadline())
            .expect("retry works");
        assert!(r.at > Nanos::ZERO);
        assert!(!pod.orch.failover_log.is_empty());
    }

    #[test]
    fn ssd_write_read_roundtrip_remote() {
        let mut params = PodParams::new(4, 1);
        params.ssd_hosts = vec![0];
        let mut pod = PodSim::new(params);
        // Host 2 uses the (remote) SSD.
        let buf = pod.io_buf(HostId(2));
        let block: Vec<u8> = (0..4096u32).map(|i| (i % 256) as u8).collect();
        let now = pod.agents[2].clock();
        let staged = pod
            .fabric
            .nt_store(now, HostId(2), buf, &block)
            .expect("stage");
        pod.agents[2].advance_clock(staged);
        pod.vssd_write(HostId(2), 10, 1, buf, deadline())
            .expect("write");
        let (rbuf, r) = pod.vssd_read(HostId(2), 10, 1, deadline()).expect("read");
        // The device reports when its DMA into the buffer is visible;
        // reading earlier would be the coherence bug the paper warns
        // about.
        let (data, _) = pod
            .read_rx_payload(HostId(2), rbuf, 4096, r.at)
            .expect("load");
        assert_eq!(data, block);
    }

    #[test]
    fn accelerator_offload_remote_transforms_data() {
        let mut params = PodParams::new(4, 1);
        params.accel_hosts = vec![1];
        let mut pod = PodSim::new(params);
        let input: Vec<u8> = (0..256u32).map(|i| i as u8).collect();
        let (outbuf, r) = pod.vaccel_run(HostId(2), &input, deadline()).expect("run");
        assert!(!r.local);
        let (out, _) = pod
            .read_rx_payload(HostId(2), outbuf, input.len(), r.at)
            .expect("read");
        let expect: Vec<u8> = input.iter().map(|b| b ^ 0xA5).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn no_device_of_kind_errors() {
        let mut pod = PodSim::new(PodParams::new(2, 1));
        let err = pod.vssd_read(HostId(0), 0, 1, deadline()).unwrap_err();
        assert!(matches!(err, PoolError::NotAssigned(DeviceKind::Ssd)));
    }

    #[test]
    fn pool_mhd_failure_recovers_after_rebuild() {
        use cxl_fabric::MhdId;
        let mut pod = PodSim::new(PodParams::new(4, 2));
        // Warm traffic on the forwarded path.
        pod.vnic_send(HostId(3), &[1u8; 64], deadline())
            .expect("warm");
        // Kill MHD 0: roughly half the isolated control rings and all
        // interleaved I/O segments die.
        pod.fabric.topology_mut().fail_mhd(MhdId(0));
        // Some hosts' sends now fail or time out (their rings/buffers
        // are unreachable). Find one affected host.
        let mut anyone_broken = false;
        for h in 0..4u16 {
            let d = pod.time() + Nanos::from_micros(300);
            if pod.vnic_send(HostId(h), &[2u8; 64], d).is_err() {
                anyone_broken = true;
            }
        }
        assert!(anyone_broken, "an MHD failure should break something");
        // Software recovery: rebuild on the surviving MHD.
        let rebuilt = pod.recover_pool_failure(MhdId(0));
        assert!(rebuilt > 0, "nothing was rebuilt");
        // Every host can use the pool again.
        for h in 0..4u16 {
            let mut ok = false;
            for _ in 0..10 {
                let d = deadline();
                if pod.vnic_send(HostId(h), &[3u8; 64], d).is_ok() {
                    ok = true;
                    break;
                }
                pod.run_control(Nanos::from_micros(300));
            }
            assert!(ok, "host {h} still broken after recovery");
        }
    }

    #[test]
    fn recovery_is_noop_when_nothing_died() {
        use cxl_fabric::MhdId;
        let mut pod = PodSim::new(PodParams::new(4, 2));
        // MHD 1 alive and well: recovering from a failure that didn't
        // happen rebuilds nothing... but wait — recovery keys off
        // segment *ways*, so ask about a never-failed MHD id beyond the
        // pod. Nothing uses it.
        let rebuilt = pod.recover_pool_failure(MhdId(7));
        assert_eq!(rebuilt, 0);
    }

    #[test]
    fn batched_sends_amortize_polling() {
        let mut pod = PodSim::new(PodParams::new(4, 2));
        // Remote host, 8-packet batch.
        let payloads: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 200]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let t0 = pod.time();
        let batch = pod
            .vnic_send_batch(HostId(3), &refs, deadline())
            .expect("batch");
        let batch_elapsed = pod.time() - t0;
        assert_eq!(batch.len(), 8);
        // Same 8 packets one by one on a fresh pod.
        let mut pod2 = PodSim::new(PodParams::new(4, 2));
        let t0 = pod2.time();
        for p in &payloads {
            pod2.vnic_send(HostId(3), p, deadline()).expect("send");
        }
        let serial_elapsed = pod2.time() - t0;
        assert!(
            batch_elapsed < serial_elapsed,
            "batch {batch_elapsed} should beat serial {serial_elapsed}"
        );
        // And every frame made it out with the right bytes.
        let dev = pod.binding(HostId(3), DeviceKind::Nic).unwrap();
        let frames = pod.take_frames(dev);
        assert_eq!(frames.len(), 8);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.bytes, payloads[i], "frame {i}");
        }
    }

    #[test]
    fn io_buffers_rotate() {
        let mut pod = PodSim::new(PodParams::new(2, 1));
        let a = pod.io_buf(HostId(0));
        let b = pod.io_buf(HostId(0));
        assert_ne!(a, b);
        // After io_slots allocations the addresses wrap.
        for _ in 0..14 {
            pod.io_buf(HostId(0));
        }
        let again = pod.io_buf(HostId(0));
        assert_eq!(a, again);
    }
}
