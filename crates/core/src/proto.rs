//! Wire format of pooling control messages.
//!
//! Every message fits one ring fragment (≤ 52 bytes) so the common case
//! — one doorbell forward — costs exactly one non-temporal store on the
//! sender and one load on the receiver. Encoding is a hand-rolled
//! little-endian TLV: `[kind: u8][fields…]`; no self-describing overhead.

use cxl_fabric::HostId;
use pcie_sim::DeviceId;

/// A pooling control message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Msg {
    /// Forwarded NIC TX submission: transmit `len` bytes from pool
    /// buffer `buf` on device `dev`.
    TxSubmit {
        /// Operation id for completion matching.
        op: u64,
        /// Target device.
        dev: DeviceId,
        /// Pool address of the TX payload.
        buf: u64,
        /// Payload length.
        len: u32,
    },
    /// Forwarded RX buffer post.
    RxPost {
        /// Operation id.
        op: u64,
        /// Target device.
        dev: DeviceId,
        /// Pool address of the RX buffer.
        buf: u64,
        /// Buffer capacity.
        len: u32,
    },
    /// Forwarded NVMe read: `blocks` blocks from `lba` into pool buffer
    /// `buf`.
    SsdRead {
        /// Operation id.
        op: u64,
        /// Target device.
        dev: DeviceId,
        /// Starting logical block.
        lba: u64,
        /// Block count.
        blocks: u32,
        /// Destination pool buffer.
        buf: u64,
    },
    /// Forwarded NVMe write.
    SsdWrite {
        /// Operation id.
        op: u64,
        /// Target device.
        dev: DeviceId,
        /// Starting logical block.
        lba: u64,
        /// Block count.
        blocks: u32,
        /// Source pool buffer.
        buf: u64,
    },
    /// Forwarded accelerator job.
    AccelRun {
        /// Operation id.
        op: u64,
        /// Target device.
        dev: DeviceId,
        /// Input pool buffer.
        inbuf: u64,
        /// Input length.
        len: u32,
        /// Output pool buffer.
        outbuf: u64,
    },
    /// Completion of a forwarded operation.
    Done {
        /// Operation id being completed.
        op: u64,
        /// 0 = success; nonzero maps to a device error class.
        status: u8,
        /// Device-reported completion time (ns).
        at: u64,
    },
    /// Agent → orchestrator: a local device failed.
    DevFailed {
        /// The failed device.
        dev: DeviceId,
        /// Detection time (ns).
        at: u64,
    },
    /// Orchestrator → agent: (re)assign `host`'s device of this kind.
    Assign {
        /// The host whose binding changes.
        host: HostId,
        /// Device kind discriminant (see [`crate::vdev::DeviceKind`]).
        kind: u8,
        /// The newly assigned device.
        dev: DeviceId,
    },
    /// Agent → orchestrator: periodic load report (0-100).
    HostLoad {
        /// Reporting host.
        host: HostId,
        /// Aggregate device load percentage.
        load: u8,
    },
    /// Agent → orchestrator: per-device load report (0-100).
    DevLoad {
        /// The device being reported.
        dev: DeviceId,
        /// Load percentage.
        load: u8,
    },
    /// Attach agent → buffer owner: a frame landed in your RX buffer.
    RxDone {
        /// Pool address of the filled buffer.
        buf: u64,
        /// Frame length.
        len: u32,
        /// Time the DMA write was visible (ns).
        at: u64,
    },
}

/// Errors from [`Msg::decode`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer was shorter than the fixed layout for its kind.
    Truncated,
    /// Unknown kind byte.
    BadKind(u8),
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::BadKind(k) => write!(f, "unknown message kind {k}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let v = *self.buf.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(v)
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        let s = self
            .buf
            .get(self.pos..self.pos + 2)
            .ok_or(DecodeError::Truncated)?;
        self.pos += 2;
        Ok(u16::from_le_bytes(s.try_into().expect("2 bytes")))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        let s = self
            .buf
            .get(self.pos..self.pos + 4)
            .ok_or(DecodeError::Truncated)?;
        self.pos += 4;
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        let s = self
            .buf
            .get(self.pos..self.pos + 8)
            .ok_or(DecodeError::Truncated)?;
        self.pos += 8;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }
}

impl Msg {
    /// Stable short name of the message kind (used as the trace
    /// annotation on `proto/encode` events).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Msg::TxSubmit { .. } => "TxSubmit",
            Msg::RxPost { .. } => "RxPost",
            Msg::SsdRead { .. } => "SsdRead",
            Msg::SsdWrite { .. } => "SsdWrite",
            Msg::AccelRun { .. } => "AccelRun",
            Msg::Done { .. } => "Done",
            Msg::DevFailed { .. } => "DevFailed",
            Msg::Assign { .. } => "Assign",
            Msg::HostLoad { .. } => "HostLoad",
            Msg::DevLoad { .. } => "DevLoad",
            Msg::RxDone { .. } => "RxDone",
        }
    }

    /// Serializes to bytes (≤ 30 for every variant).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(30);
        match *self {
            Msg::TxSubmit { op, dev, buf, len } => {
                out.push(1);
                put_u64(&mut out, op);
                put_u32(&mut out, dev.0);
                put_u64(&mut out, buf);
                put_u32(&mut out, len);
            }
            Msg::RxPost { op, dev, buf, len } => {
                out.push(2);
                put_u64(&mut out, op);
                put_u32(&mut out, dev.0);
                put_u64(&mut out, buf);
                put_u32(&mut out, len);
            }
            Msg::SsdRead {
                op,
                dev,
                lba,
                blocks,
                buf,
            } => {
                out.push(3);
                put_u64(&mut out, op);
                put_u32(&mut out, dev.0);
                put_u64(&mut out, lba);
                put_u32(&mut out, blocks);
                put_u64(&mut out, buf);
            }
            Msg::SsdWrite {
                op,
                dev,
                lba,
                blocks,
                buf,
            } => {
                out.push(4);
                put_u64(&mut out, op);
                put_u32(&mut out, dev.0);
                put_u64(&mut out, lba);
                put_u32(&mut out, blocks);
                put_u64(&mut out, buf);
            }
            Msg::AccelRun {
                op,
                dev,
                inbuf,
                len,
                outbuf,
            } => {
                out.push(5);
                put_u64(&mut out, op);
                put_u32(&mut out, dev.0);
                put_u64(&mut out, inbuf);
                put_u32(&mut out, len);
                put_u64(&mut out, outbuf);
            }
            Msg::Done { op, status, at } => {
                out.push(6);
                put_u64(&mut out, op);
                out.push(status);
                put_u64(&mut out, at);
            }
            Msg::DevFailed { dev, at } => {
                out.push(7);
                put_u32(&mut out, dev.0);
                put_u64(&mut out, at);
            }
            Msg::Assign { host, kind, dev } => {
                out.push(8);
                put_u16(&mut out, host.0);
                out.push(kind);
                put_u32(&mut out, dev.0);
            }
            Msg::HostLoad { host, load } => {
                out.push(9);
                put_u16(&mut out, host.0);
                out.push(load);
            }
            Msg::DevLoad { dev, load } => {
                out.push(10);
                put_u32(&mut out, dev.0);
                out.push(load);
            }
            Msg::RxDone { buf, len, at } => {
                out.push(11);
                put_u64(&mut out, buf);
                put_u32(&mut out, len);
                put_u64(&mut out, at);
            }
        }
        out
    }

    /// Parses a message from bytes.
    pub fn decode(buf: &[u8]) -> Result<Msg, DecodeError> {
        let mut r = Reader { buf, pos: 0 };
        let kind = r.u8()?;
        Ok(match kind {
            1 => Msg::TxSubmit {
                op: r.u64()?,
                dev: DeviceId(r.u32()?),
                buf: r.u64()?,
                len: r.u32()?,
            },
            2 => Msg::RxPost {
                op: r.u64()?,
                dev: DeviceId(r.u32()?),
                buf: r.u64()?,
                len: r.u32()?,
            },
            3 => Msg::SsdRead {
                op: r.u64()?,
                dev: DeviceId(r.u32()?),
                lba: r.u64()?,
                blocks: r.u32()?,
                buf: r.u64()?,
            },
            4 => Msg::SsdWrite {
                op: r.u64()?,
                dev: DeviceId(r.u32()?),
                lba: r.u64()?,
                blocks: r.u32()?,
                buf: r.u64()?,
            },
            5 => Msg::AccelRun {
                op: r.u64()?,
                dev: DeviceId(r.u32()?),
                inbuf: r.u64()?,
                len: r.u32()?,
                outbuf: r.u64()?,
            },
            6 => Msg::Done {
                op: r.u64()?,
                status: r.u8()?,
                at: r.u64()?,
            },
            7 => Msg::DevFailed {
                dev: DeviceId(r.u32()?),
                at: r.u64()?,
            },
            8 => Msg::Assign {
                host: HostId(r.u16()?),
                kind: r.u8()?,
                dev: DeviceId(r.u32()?),
            },
            9 => Msg::HostLoad {
                host: HostId(r.u16()?),
                load: r.u8()?,
            },
            10 => Msg::DevLoad {
                dev: DeviceId(r.u32()?),
                load: r.u8()?,
            },
            11 => Msg::RxDone {
                buf: r.u64()?,
                len: r.u32()?,
                at: r.u64()?,
            },
            k => return Err(DecodeError::BadKind(k)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn all_variants() -> Vec<Msg> {
        vec![
            Msg::TxSubmit {
                op: 1,
                dev: DeviceId(2),
                buf: 0xDEAD_BEEF,
                len: 1500,
            },
            Msg::RxPost {
                op: 2,
                dev: DeviceId(3),
                buf: 0x1000,
                len: 2048,
            },
            Msg::SsdRead {
                op: 3,
                dev: DeviceId(4),
                lba: 77,
                blocks: 8,
                buf: 0x2000,
            },
            Msg::SsdWrite {
                op: 4,
                dev: DeviceId(5),
                lba: 99,
                blocks: 1,
                buf: 0x3000,
            },
            Msg::AccelRun {
                op: 5,
                dev: DeviceId(6),
                inbuf: 0x4000,
                len: 4096,
                outbuf: 0x5000,
            },
            Msg::Done {
                op: 6,
                status: 0,
                at: 123_456,
            },
            Msg::DevFailed {
                dev: DeviceId(7),
                at: 42,
            },
            Msg::Assign {
                host: HostId(3),
                kind: 1,
                dev: DeviceId(8),
            },
            Msg::HostLoad {
                host: HostId(2),
                load: 85,
            },
            Msg::DevLoad {
                dev: DeviceId(9),
                load: 61,
            },
            Msg::RxDone {
                buf: 0x7000,
                len: 1500,
                at: 987_654,
            },
        ]
    }

    #[test]
    fn every_variant_roundtrips() {
        for m in all_variants() {
            let bytes = m.encode();
            let back = Msg::decode(&bytes).expect("decode");
            assert_eq!(back, m);
        }
    }

    #[test]
    fn every_variant_fits_one_fragment() {
        for m in all_variants() {
            assert!(
                m.encode().len() <= 52,
                "{m:?} is {} bytes",
                m.encode().len()
            );
        }
    }

    #[test]
    fn truncated_buffers_error_not_panic() {
        for m in all_variants() {
            let bytes = m.encode();
            for cut in 0..bytes.len() {
                assert_eq!(Msg::decode(&bytes[..cut]), Err(DecodeError::Truncated));
            }
        }
    }

    #[test]
    fn unknown_kind_rejected() {
        assert_eq!(Msg::decode(&[200, 0, 0]), Err(DecodeError::BadKind(200)));
        assert_eq!(Msg::decode(&[0]), Err(DecodeError::BadKind(0)));
    }

    proptest! {
        #[test]
        fn tx_submit_roundtrips(op in any::<u64>(), dev in any::<u32>(),
                                buf in any::<u64>(), len in any::<u32>()) {
            let m = Msg::TxSubmit { op, dev: DeviceId(dev), buf, len };
            prop_assert_eq!(Msg::decode(&m.encode()).unwrap(), m);
        }

        #[test]
        fn done_roundtrips(op in any::<u64>(), status in any::<u8>(), at in any::<u64>()) {
            let m = Msg::Done { op, status, at };
            prop_assert_eq!(Msg::decode(&m.encode()).unwrap(), m);
        }

        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = Msg::decode(&bytes);
        }
    }
}
