//! Soft accelerator disaggregation (§5): many hosts, few accelerators.
//!
//! "Pooling addresses this by allowing cloud providers to deploy a
//! small number of accelerators (e.g., 1:16 ratio) while ensuring all
//! hosts in the target racks can access them."
//!
//! The experiment: `hosts` hosts each submit `jobs_per_host` offload
//! jobs to the pod's shared accelerator(s). We report aggregate
//! throughput, per-job latency, device utilization, and the deployment
//! cost relative to giving every host its own card.

use cxl_fabric::HostId;
use simkit::stats::Histogram;
use simkit::Nanos;

use crate::pod::{PodParams, PodSim};
use crate::vdev::{DeviceKind, PoolError};

/// Configuration of one accelerator-pooling run.
#[derive(Clone, Debug)]
pub struct AccelPoolConfig {
    /// Hosts sharing the pool.
    pub hosts: u16,
    /// Accelerators deployed (1 for the paper's 1:16 pitch).
    pub accels: u16,
    /// Jobs submitted per host.
    pub jobs_per_host: u32,
    /// Bytes per job.
    pub job_bytes: u32,
}

impl Default for AccelPoolConfig {
    fn default() -> Self {
        AccelPoolConfig {
            hosts: 16,
            accels: 1,
            jobs_per_host: 8,
            job_bytes: 64 * 1024 - 1024,
        }
    }
}

/// Results of one accelerator-pooling run.
#[derive(Clone, Debug)]
pub struct AccelPoolResult {
    /// Per-job end-to-end latency (submit → output visible), ns.
    pub latency: Histogram,
    /// Total jobs completed.
    pub jobs: u64,
    /// Makespan of the whole run.
    pub makespan: Nanos,
    /// Cards deployed per host served (e.g. 1/16 = 0.0625).
    pub cards_per_host: f64,
    /// Fraction of jobs that ran on a *remote* accelerator.
    pub remote_fraction: f64,
}

/// Runs the accelerator-pooling experiment.
pub fn run(config: &AccelPoolConfig) -> Result<AccelPoolResult, PoolError> {
    let mut params = PodParams::new(config.hosts, 1);
    params.accel_hosts = (0..config.accels).map(|i| i % config.hosts).collect();
    params.io_slots = 32;
    let mut pod = PodSim::new(params);
    let deadline_slack = Nanos::from_millis(200);

    let mut latency = Histogram::new();
    let mut jobs = 0u64;
    let mut remote = 0u64;
    let input: Vec<u8> = (0..config.job_bytes).map(|i| i as u8).collect();

    // Round-robin submission: each host takes its turn submitting one
    // job until everyone has submitted all theirs. Turn order stands in
    // for independent arrival processes while keeping the run
    // deterministic.
    for _round in 0..config.jobs_per_host {
        for h in 0..config.hosts {
            let owner = HostId(h);
            if pod.binding(owner, DeviceKind::Accel).is_none() {
                return Err(PoolError::NotAssigned(DeviceKind::Accel));
            }
            let start = pod.agents[h as usize].clock();
            let deadline = pod.time() + deadline_slack;
            let (_outbuf, r) = pod.vaccel_run(owner, &input, deadline)?;
            latency.record((r.at.saturating_sub(start)).as_nanos());
            jobs += 1;
            if !r.local {
                remote += 1;
            }
        }
    }

    Ok(AccelPoolResult {
        latency,
        jobs,
        makespan: pod.time(),
        cards_per_host: config.accels as f64 / config.hosts as f64,
        remote_fraction: remote as f64 / jobs as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_to_one_pooling_serves_every_host() {
        let r = run(&AccelPoolConfig {
            hosts: 16,
            accels: 1,
            jobs_per_host: 2,
            job_bytes: 8 * 1024,
        })
        .expect("run");
        assert_eq!(r.jobs, 32);
        assert!((r.cards_per_host - 1.0 / 16.0).abs() < 1e-9);
        // 15 of 16 hosts are remote from the card.
        assert!(r.remote_fraction > 0.9, "remote {}", r.remote_fraction);
    }

    #[test]
    fn more_cards_reduce_latency_under_contention() {
        let one = run(&AccelPoolConfig {
            hosts: 8,
            accels: 1,
            jobs_per_host: 4,
            job_bytes: 32 * 1024,
        })
        .expect("one");
        let four = run(&AccelPoolConfig {
            hosts: 8,
            accels: 4,
            jobs_per_host: 4,
            job_bytes: 32 * 1024,
        })
        .expect("four");
        assert!(
            four.latency.quantile(0.9) < one.latency.quantile(0.9),
            "4 cards p90 {} should beat 1 card p90 {}",
            four.latency.quantile(0.9),
            one.latency.quantile(0.9)
        );
    }

    #[test]
    fn local_host_gets_fast_path() {
        // 1 host, 1 accel: everything is local.
        let r = run(&AccelPoolConfig {
            hosts: 1,
            accels: 1,
            jobs_per_host: 3,
            job_bytes: 4 * 1024,
        })
        .expect("run");
        assert_eq!(r.remote_fraction, 0.0);
    }
}
