//! The per-host pooling agent.
//!
//! Every host runs one agent (§4.2). It owns the host's physical PCIe
//! devices, polls shared-memory channels for operations forwarded by
//! remote hosts and for orchestrator commands, executes those operations
//! locally (doorbell + device queues), and reports device failures and
//! load upstream. The agent is single-threaded and poll-mode, like the
//! datapath stacks it mediates for.

use std::collections::HashMap;

use cxl_fabric::{Fabric, HostId};
use pcie_sim::nic::TxFrame;
use pcie_sim::{Accelerator, BufRef, DeviceError, DeviceId, Nic, Ssd};
use shmem::channel::{ChannelReceiver, ChannelSend, ChannelSender};
use shmem::ring::PollOutcome;
use simkit::trace::{self, Track};
use simkit::Nanos;

use crate::proto::Msg;
use crate::vdev::DeviceKind;

/// Who is on the other end of one of the agent's channel links.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Peer {
    /// Another host's agent (datapath forwarding).
    Host(HostId),
    /// The pooling orchestrator (control plane).
    Orchestrator,
}

/// One bidirectional link (a pair of rings) to a peer.
pub struct Link {
    /// Sender toward the peer.
    pub tx: ChannelSender,
    /// Receiver from the peer.
    pub rx: ChannelReceiver,
}

/// A completed forwarded operation, as recorded by the *requesting*
/// agent.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// 0 = success.
    pub status: u8,
    /// Device-reported completion time.
    pub at: Nanos,
}

/// Where to notify when a posted RX buffer fills.
#[derive(Clone, Copy, Debug)]
enum RxRoute {
    /// The buffer belongs to this host's own stack.
    Local,
    /// The buffer was posted over the link at this index.
    Link(usize),
}

/// An RX completion delivered to the buffer's owner.
#[derive(Clone, Copy, Debug)]
pub struct RxEvent {
    /// Pool address of the filled buffer.
    pub buf: u64,
    /// Frame length.
    pub len: u32,
    /// When the DMA write was visible.
    pub at: Nanos,
}

/// Counters for one agent.
#[derive(Clone, Copy, Debug, Default)]
pub struct AgentStats {
    /// Forwarded operations executed for remote hosts.
    pub served: u64,
    /// Operations that hit a failed local device.
    pub failures_seen: u64,
    /// Assignment updates applied.
    pub assigns: u64,
}

/// The per-host pooling agent.
pub struct Agent {
    /// The host this agent runs on.
    pub host: HostId,
    /// Local physical NICs.
    pub nics: HashMap<DeviceId, Nic>,
    /// Local physical SSDs.
    pub ssds: HashMap<DeviceId, Ssd>,
    /// Local physical accelerators.
    pub accels: HashMap<DeviceId, Accelerator>,
    links: Vec<(Peer, Link)>,
    /// This host's current device bindings, per kind (set by
    /// orchestrator `Assign` messages).
    pub assigned: HashMap<DeviceKind, DeviceId>,
    /// Completions of operations *this host* forwarded, keyed by op id.
    pub completions: HashMap<u64, Completion>,
    /// Frames that left local NICs (consumed by tests / net glue).
    pub out_frames: Vec<(DeviceId, TxFrame)>,
    /// RX completions for buffers owned by this host's stack.
    pub rx_inbox: Vec<RxEvent>,
    /// Per-NIC FIFO of notification routes, aligned with the NIC's
    /// posted-buffer ring.
    rx_routes: HashMap<DeviceId, std::collections::VecDeque<RxRoute>>,
    /// Failure notices awaiting forwarding to the orchestrator.
    outbox_orch: Vec<Msg>,
    clock: Nanos,
    stats: AgentStats,
}

impl Agent {
    /// Creates an agent with no devices or links yet.
    pub fn new(host: HostId) -> Agent {
        Agent {
            host,
            nics: HashMap::new(),
            ssds: HashMap::new(),
            accels: HashMap::new(),
            links: Vec::new(),
            assigned: HashMap::new(),
            completions: HashMap::new(),
            out_frames: Vec::new(),
            rx_inbox: Vec::new(),
            rx_routes: HashMap::new(),
            outbox_orch: Vec::new(),
            clock: Nanos::ZERO,
            stats: AgentStats::default(),
        }
    }

    /// Attaches a link to a peer.
    pub fn add_link(&mut self, peer: Peer, link: Link) {
        self.links.push((peer, link));
    }

    /// Replaces the link to `peer` (pool-failure recovery: the old
    /// rings died with their MHD). Any in-flight protocol state on the
    /// old rings is abandoned; outstanding operations time out and get
    /// retried by their callers.
    pub fn replace_link(&mut self, peer: Peer, link: Link) {
        if let Some(slot) = self.links.iter_mut().find(|(p, _)| *p == peer) {
            slot.1 = link;
        } else {
            self.links.push((peer, link));
        }
    }

    /// The agent's local poll-loop clock.
    pub fn clock(&self) -> Nanos {
        self.clock
    }

    /// Moves the clock forward (e.g. after the host was busy elsewhere).
    pub fn advance_clock(&mut self, to: Nanos) {
        if to > self.clock {
            self.clock = to;
        }
    }

    /// Control-plane queue occupancy: orchestrator messages waiting to
    /// flush plus TX frames awaiting harness pickup. The metrics plane
    /// samples this as `host/queue_depth`.
    pub fn queue_depth(&self) -> usize {
        self.outbox_orch.len() + self.out_frames.len()
    }

    /// Aggregated send-side ring statistics across every channel link
    /// this agent holds (mesh peers + orchestrator): total sends,
    /// backpressure events, and cumulative stall nanoseconds. The
    /// metrics plane samples these as `chan/*` series.
    pub fn channel_stats(&self) -> shmem::channel::ChannelStats {
        let mut total = shmem::channel::ChannelStats::default();
        for (_, link) in &self.links {
            let s = link.tx.stats();
            total.sends += s.sends;
            total.blocked_events += s.blocked_events;
            total.stall_ns += s.stall_ns;
        }
        total
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AgentStats {
        self.stats
    }

    /// Records that the next RX buffer posted on `dev` belongs to this
    /// host's own stack (local fast-path post).
    pub fn note_local_rx(&mut self, dev: DeviceId) {
        self.rx_routes
            .entry(dev)
            .or_default()
            .push_back(RxRoute::Local);
    }

    /// Delivers a frame arriving from the wire at local NIC `dev`:
    /// drives the device's receive path and routes the completion to
    /// the buffer's owner — this host's inbox, or an `RxDone` message
    /// over the channel the buffer was posted from.
    pub fn deliver_frame(
        &mut self,
        fabric: &mut Fabric,
        dev: DeviceId,
        bytes: &[u8],
    ) -> Result<Option<pcie_sim::RxCompletion>, DeviceError> {
        let now = self.clock;
        let nic = self.nics.get_mut(&dev).ok_or(DeviceError::Failed(dev))?;
        let completion = nic.receive(fabric, now, bytes)?;
        let Some(c) = completion else {
            return Ok(None); // Dropped: no buffer consumed, no route.
        };
        let route = self
            .rx_routes
            .get_mut(&dev)
            .and_then(|q| q.pop_front())
            .unwrap_or(RxRoute::Local);
        let event = RxEvent {
            buf: c.buf.addr(),
            len: c.len,
            at: c.done,
        };
        match route {
            RxRoute::Local => self.rx_inbox.push(event),
            RxRoute::Link(i) => {
                let msg = Msg::RxDone {
                    buf: event.buf,
                    len: event.len,
                    at: event.at.as_nanos(),
                };
                let clock = self.clock;
                let (_, link) = &mut self.links[i];
                // Best effort, like a real CQE ring: if the channel is
                // jammed the owner's poll will still find the payload
                // once it learns the buffer address out of band.
                let _ = link.tx.send(fabric, clock, &msg.encode());
            }
        }
        Ok(Some(c))
    }

    /// Queues a failure notice for the orchestrator (used by the local
    /// fast path, which sees device errors directly rather than through
    /// a forwarded completion).
    pub fn report_failure(&mut self, dev: DeviceId) {
        self.stats.failures_seen += 1;
        let at = self.clock.as_nanos();
        self.outbox_orch.push(Msg::DevFailed { dev, at });
    }

    /// The kind of a local device, if it is attached here.
    pub fn local_kind(&self, dev: DeviceId) -> Option<DeviceKind> {
        if self.nics.contains_key(&dev) {
            Some(DeviceKind::Nic)
        } else if self.ssds.contains_key(&dev) {
            Some(DeviceKind::Ssd)
        } else if self.accels.contains_key(&dev) {
            Some(DeviceKind::Accel)
        } else {
            None
        }
    }

    /// Sends `msg` to `peer`, charging the agent's clock.
    pub fn send_to(
        &mut self,
        fabric: &mut Fabric,
        peer: Peer,
        msg: &Msg,
    ) -> Result<Nanos, crate::vdev::PoolError> {
        let clock = self.clock;
        if let Some(tr) = fabric.trace_mut() {
            tr.instant_note(
                Track::HostCpu(self.host.0),
                "proto/encode",
                clock,
                msg.kind_name(),
            );
        }
        let link = self
            .links
            .iter_mut()
            .find(|(p, _)| *p == peer)
            .map(|(_, l)| l)
            .ok_or(crate::vdev::PoolError::ChannelBlocked)?;
        match link.tx.send(fabric, clock, &msg.encode())? {
            ChannelSend::Sent(t) => {
                // An NT store is posted: the CPU moves on after issuing
                // it, long before the line lands in pool DRAM at `t`.
                self.clock += Nanos(30);
                Ok(t)
            }
            ChannelSend::Blocked { at, .. } => {
                self.clock = self.clock.max(at);
                Err(crate::vdev::PoolError::ChannelBlocked)
            }
        }
    }

    /// Runs the agent's poll loop until its clock reaches `until`,
    /// executing any forwarded operations and orchestrator commands it
    /// receives. Failure notices for the orchestrator accumulate in an
    /// outbox and are flushed on each pass.
    pub fn pump(&mut self, fabric: &mut Fabric, until: Nanos) {
        while self.clock < until {
            let before = self.clock;
            // Flush pending orchestrator notices first.
            let pending: Vec<Msg> = std::mem::take(&mut self.outbox_orch);
            for msg in pending {
                // Best effort: if blocked, requeue for the next pass.
                if self.send_to(fabric, Peer::Orchestrator, &msg).is_err() {
                    self.outbox_orch.push(msg);
                }
            }
            // One round-robin pass over all links.
            for i in 0..self.links.len() {
                let clock = self.clock;
                let outcome = {
                    let (_, link) = &mut self.links[i];
                    link.rx.poll(fabric, clock)
                };
                match outcome {
                    Ok(PollOutcome::Empty(t)) => self.clock = t,
                    Ok(PollOutcome::Msg { data, at }) => {
                        self.clock = at;
                        if let Ok(msg) = Msg::decode(&data) {
                            self.dispatch(fabric, i, msg);
                        }
                    }
                    Err(_) => {
                        // Fabric trouble on this link (e.g. MHD failure):
                        // skip it this round; time advances via the
                        // other links.
                    }
                }
            }
            if self.links.is_empty() || self.clock == before {
                // No link consumed any time this pass — every ring is
                // on failed pool memory (λ-interleaved rings all touch
                // a failed MHD). The host busy-polls through the
                // outage; burn the quantum instead of spinning forever.
                self.clock = until;
            }
        }
    }

    /// Marks the arrival of a forwarded operation on this agent's CPU
    /// track (no-op when the recorder is off).
    fn trace_dispatch(&self, fabric: &mut Fabric) {
        let clock = self.clock;
        if let Some(tr) = fabric.trace_mut() {
            tr.instant(Track::HostCpu(self.host.0), "agent/dispatch", clock);
        }
    }

    fn dispatch(&mut self, fabric: &mut Fabric, link_idx: usize, msg: Msg) {
        let host = self.host.0;
        match msg {
            Msg::TxSubmit { op, dev, buf, len } => {
                fabric.trace_push(op, trace::KIND_NIC);
                self.trace_dispatch(fabric);
                let clock = self.clock;
                let result = match self.nics.get_mut(&dev) {
                    Some(nic) => {
                        let t = clock + nic.doorbell_cost();
                        nic.ring_doorbell();
                        if let Some(tr) = fabric.trace_mut() {
                            tr.instant(Track::HostCpu(host), "dev/doorbell", t);
                        }
                        nic.transmit(fabric, t, BufRef::Pool(buf), len)
                    }
                    None => Err(DeviceError::Failed(dev)),
                };
                let result = result.map(|frame| {
                    let at = frame.wire_exit;
                    self.out_frames.push((dev, frame));
                    at
                });
                self.complete(fabric, link_idx, op, dev, result);
                fabric.trace_pop();
            }
            Msg::RxPost { op, dev, buf, len } => {
                fabric.trace_push(op, trace::KIND_NIC);
                self.trace_dispatch(fabric);
                let clock = self.clock;
                let result = match self.nics.get_mut(&dev) {
                    Some(nic) => nic
                        .post_rx(BufRef::Pool(buf), len)
                        .map(|()| clock + nic.doorbell_cost()),
                    None => Err(DeviceError::Failed(dev)),
                };
                if let Ok(t) = &result {
                    // Remember whose buffer this is so the RX
                    // completion can be forwarded back.
                    self.rx_routes
                        .entry(dev)
                        .or_default()
                        .push_back(RxRoute::Link(link_idx));
                    let t = *t;
                    if let Some(tr) = fabric.trace_mut() {
                        tr.instant(Track::HostCpu(host), "dev/doorbell", t);
                    }
                }
                self.complete(fabric, link_idx, op, dev, result);
                fabric.trace_pop();
            }
            Msg::SsdRead {
                op,
                dev,
                lba,
                blocks,
                buf,
            } => {
                fabric.trace_push(op, trace::KIND_SSD);
                self.trace_dispatch(fabric);
                let clock = self.clock;
                let result = match self.ssds.get_mut(&dev) {
                    Some(ssd) => ssd.read(fabric, clock, lba, blocks as u64, BufRef::Pool(buf)),
                    None => Err(DeviceError::Failed(dev)),
                };
                self.complete(fabric, link_idx, op, dev, result);
                fabric.trace_pop();
            }
            Msg::SsdWrite {
                op,
                dev,
                lba,
                blocks,
                buf,
            } => {
                fabric.trace_push(op, trace::KIND_SSD);
                self.trace_dispatch(fabric);
                let clock = self.clock;
                let result = match self.ssds.get_mut(&dev) {
                    Some(ssd) => ssd.write(fabric, clock, lba, blocks as u64, BufRef::Pool(buf)),
                    None => Err(DeviceError::Failed(dev)),
                };
                self.complete(fabric, link_idx, op, dev, result);
                fabric.trace_pop();
            }
            Msg::AccelRun {
                op,
                dev,
                inbuf,
                len,
                outbuf,
            } => {
                fabric.trace_push(op, trace::KIND_ACCEL);
                self.trace_dispatch(fabric);
                let clock = self.clock;
                let result = match self.accels.get_mut(&dev) {
                    Some(a) => a.offload(
                        fabric,
                        clock,
                        BufRef::Pool(inbuf),
                        len,
                        BufRef::Pool(outbuf),
                    ),
                    None => Err(DeviceError::Failed(dev)),
                };
                self.complete(fabric, link_idx, op, dev, result);
                fabric.trace_pop();
            }
            Msg::Done { op, status, at } => {
                if let Some(tr) = fabric.trace_mut() {
                    let (_, kind) = tr.ctx();
                    tr.instant_for(
                        Track::HostCpu(host),
                        "op/complete",
                        op,
                        kind,
                        Nanos(at),
                        None,
                    );
                }
                self.completions.insert(
                    op,
                    Completion {
                        status,
                        at: Nanos(at),
                    },
                );
            }
            Msg::RxDone { buf, len, at } => {
                self.rx_inbox.push(RxEvent {
                    buf,
                    len,
                    at: Nanos(at),
                });
            }
            Msg::Assign { host, kind, dev } => {
                if host == self.host {
                    if let Some(k) = DeviceKind::from_u8(kind) {
                        self.assigned.insert(k, dev);
                        self.stats.assigns += 1;
                        let clock = self.clock;
                        if let Some(tr) = fabric.trace_mut() {
                            tr.instant_note(
                                Track::HostCpu(self.host.0),
                                "agent/assign",
                                clock,
                                &format!("{k:?} -> {dev:?}"),
                            );
                        }
                    }
                }
            }
            // Control-plane reports are consumed by the orchestrator,
            // not by agents.
            Msg::DevFailed { .. } | Msg::HostLoad { .. } | Msg::DevLoad { .. } => {}
        }
    }

    /// Sends a `Done` back on the link the request arrived on, and a
    /// failure notice to the orchestrator when the device errored.
    fn complete(
        &mut self,
        fabric: &mut Fabric,
        link_idx: usize,
        op: u64,
        dev: DeviceId,
        result: Result<Nanos, DeviceError>,
    ) {
        let (status, at) = match result {
            Ok(t) => {
                self.stats.served += 1;
                (0u8, t)
            }
            Err(_) => {
                self.stats.failures_seen += 1;
                let clock = self.clock;
                if let Some(tr) = fabric.trace_mut() {
                    tr.instant_note(
                        Track::HostCpu(self.host.0),
                        "dev/failed",
                        clock,
                        &format!("{dev:?}"),
                    );
                }
                self.outbox_orch.push(Msg::DevFailed {
                    dev,
                    at: clock.as_nanos(),
                });
                (1u8, self.clock)
            }
        };
        let done = Msg::Done {
            op,
            status,
            at: at.as_nanos(),
        };
        let clock = self.clock;
        let (_, link) = &mut self.links[link_idx];
        if let Ok(ChannelSend::Sent(_)) = link.tx.send(fabric, clock, &done.encode()) {
            // Reply issued; agent keeps polling from its own clock.
        }
        // A blocked reply ring is dropped silently here: the requester
        // will time out and retry. (Rings are sized to make this rare.)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_fabric::PodConfig;
    use pcie_sim::NicConfig;
    use shmem::channel::Channel;

    /// Builds two linked agents (host 0 with a NIC, host 1 without).
    fn duo() -> (Fabric, Agent, Agent) {
        let mut f = Fabric::new(PodConfig::new(2, 2, 2));
        let ch = Channel::allocate(&mut f, HostId(0), HostId(1), 64).expect("chan");
        let mut a0 = Agent::new(HostId(0));
        let mut a1 = Agent::new(HostId(1));
        a0.add_link(
            Peer::Host(HostId(1)),
            Link {
                tx: ch.ab.0,
                rx: ch.ba.1,
            },
        );
        a1.add_link(
            Peer::Host(HostId(0)),
            Link {
                tx: ch.ba.0,
                rx: ch.ab.1,
            },
        );
        a0.nics.insert(
            DeviceId(0),
            Nic::new(DeviceId(0), HostId(0), NicConfig::default()),
        );
        (f, a0, a1)
    }

    #[test]
    fn forwarded_tx_executes_and_completes() {
        let (mut f, mut a0, mut a1) = duo();
        // Host 1 stages a payload in a shared buffer.
        let seg = f
            .alloc_shared(&[HostId(0), HostId(1)], 4096)
            .expect("alloc");
        let t = f
            .nt_store(Nanos(0), HostId(1), seg.base(), &[9u8; 128])
            .expect("store");
        a1.advance_clock(t);
        a1.send_to(
            &mut f,
            Peer::Host(HostId(0)),
            &Msg::TxSubmit {
                op: 1,
                dev: DeviceId(0),
                buf: seg.base(),
                len: 128,
            },
        )
        .expect("send");
        // Agent 0 picks it up and transmits.
        a0.pump(&mut f, Nanos::from_micros(50));
        assert_eq!(a0.stats().served, 1);
        assert_eq!(a0.out_frames.len(), 1);
        assert_eq!(a0.out_frames[0].1.bytes, vec![9u8; 128]);
        // Agent 1 receives the completion.
        a1.pump(&mut f, Nanos::from_micros(100));
        let c = a1.completions.get(&1).expect("completion");
        assert_eq!(c.status, 0);
        assert!(c.at > Nanos::ZERO);
    }

    #[test]
    fn failed_device_reports_status_one() {
        let (mut f, mut a0, mut a1) = duo();
        a0.nics.get_mut(&DeviceId(0)).expect("nic").fail();
        let seg = f
            .alloc_shared(&[HostId(0), HostId(1)], 4096)
            .expect("alloc");
        a1.send_to(
            &mut f,
            Peer::Host(HostId(0)),
            &Msg::TxSubmit {
                op: 7,
                dev: DeviceId(0),
                buf: seg.base(),
                len: 64,
            },
        )
        .expect("send");
        a0.pump(&mut f, Nanos::from_micros(50));
        assert_eq!(a0.stats().failures_seen, 1);
        a1.pump(&mut f, Nanos::from_micros(100));
        assert_eq!(a1.completions.get(&7).expect("completion").status, 1);
    }

    #[test]
    fn unknown_device_is_a_failure_not_a_panic() {
        let (mut f, mut a0, mut a1) = duo();
        let seg = f
            .alloc_shared(&[HostId(0), HostId(1)], 4096)
            .expect("alloc");
        a1.send_to(
            &mut f,
            Peer::Host(HostId(0)),
            &Msg::SsdRead {
                op: 3,
                dev: DeviceId(99),
                lba: 0,
                blocks: 1,
                buf: seg.base(),
            },
        )
        .expect("send");
        a0.pump(&mut f, Nanos::from_micros(50));
        a1.pump(&mut f, Nanos::from_micros(100));
        assert_eq!(a1.completions.get(&3).expect("completion").status, 1);
    }

    #[test]
    fn assign_updates_binding() {
        let (mut f, mut a0, mut a1) = duo();
        a1.send_to(
            &mut f,
            Peer::Host(HostId(0)),
            &Msg::Assign {
                host: HostId(0),
                kind: DeviceKind::Nic.as_u8(),
                dev: DeviceId(5),
            },
        )
        .expect("send");
        a0.pump(&mut f, Nanos::from_micros(50));
        assert_eq!(a0.assigned.get(&DeviceKind::Nic), Some(&DeviceId(5)));
        assert_eq!(a0.stats().assigns, 1);
    }

    #[test]
    fn assign_for_other_host_is_ignored() {
        let (mut f, mut a0, mut a1) = duo();
        a1.send_to(
            &mut f,
            Peer::Host(HostId(0)),
            &Msg::Assign {
                host: HostId(3),
                kind: DeviceKind::Nic.as_u8(),
                dev: DeviceId(5),
            },
        )
        .expect("send");
        a0.pump(&mut f, Nanos::from_micros(50));
        assert!(a0.assigned.is_empty());
    }

    #[test]
    fn pump_without_links_just_advances_clock() {
        let mut f = Fabric::new(PodConfig::new(2, 2, 2));
        let mut a = Agent::new(HostId(0));
        a.pump(&mut f, Nanos::from_micros(10));
        assert_eq!(a.clock(), Nanos::from_micros(10));
    }
}
