//! Software PCIe device pooling over CXL memory pools — the paper's
//! contribution.
//!
//! A CXL pod's hosts can all reach the same pool memory, and so can
//! every PCIe device attached to any of those hosts (via its attach
//! host's DMA path). This crate turns that observation into a device
//! pool:
//!
//! - **Datapath** ([`proto`], [`vdev`], [`agent`]): I/O buffers live in
//!   shared pool segments; a host using a *remote* device writes its
//!   buffers with software coherence and forwards the MMIO part of the
//!   operation (doorbells, queue submissions) over a sub-microsecond
//!   shared-memory channel to the device's attach host, where a pooling
//!   agent executes it and returns a completion.
//! - **Pooling orchestrator** ([`orchestrator`]): allocates devices to
//!   hosts (local-first below a load threshold, else least-utilized),
//!   watches agent heartbeats and device health, migrates load, and
//!   fails affected hosts over to surviving devices.
//! - **Assembly** ([`pod`]): [`pod::PodSim`] wires fabric, devices,
//!   agents, channels, and orchestrator into one simulated rack you can
//!   drive from tests, examples, and benches.
//! - **Tenant lifecycle** ([`lifecycle`]): provision/migrate/release a
//!   whole tenant's device bindings and pool state — the §4.2
//!   orchestrator's churn response, generalizing connection migration.
//! - **§5 extensions** ([`striping`], [`accelpool`], [`torless`],
//!   [`migration`]): storage striping across pooled SSDs, 1:16
//!   accelerator disaggregation, ToR-less availability modelling, and
//!   TCP-connection migration between pooled NICs.

#![warn(missing_docs)]

pub mod accelpool;
pub mod agent;
pub mod bonding;
pub mod lifecycle;
pub mod migration;
pub mod orchestrator;
pub mod pod;
pub mod proto;
pub mod striping;
pub mod telemetry;
pub mod torless;
pub mod vdev;

pub use lifecycle::{LifecycleStats, TenantMigrationReport, TenantState};
pub use orchestrator::{AllocPolicy, Orchestrator};
pub use pod::{PodParams, PodSim};
pub use proto::Msg;
pub use striping::{Replica, ReplicaSet, StripedVolume};
pub use vdev::{DeviceKind, VirtualDevice};
