//! Property tests for the churn lifecycle schedule: the whole timeline
//! must be a pure function of the seed so churn runs replay
//! bit-identically (the repo's determinism gate extends to churn).

use simkit::Nanos;
use workgen::{Arrival, ChurnSpec, ChurnTenant, LifecycleEventKind, OpKind, SloSpec, TenantSpec};

fn churn(n: usize) -> ChurnSpec {
    ChurnSpec {
        tenants: (0..n)
            .map(|i| ChurnTenant {
                spec: TenantSpec {
                    name: format!("churn-{i}"),
                    arrival: Arrival::Poisson {
                        rate_pps: 20_000.0 + 1_000.0 * i as f64,
                    },
                    mix: vec![(OpKind::NicSend { bytes: 256 }, 1.0)],
                    hosts: vec![i as u16],
                    slo: SloSpec::p99(Nanos::from_micros(100)),
                },
                state_len: 4096,
                replicas: 0,
                naive_dev: 0,
            })
            .collect(),
        migrate: true,
    }
}

#[test]
fn schedule_is_pure_function_of_seed() {
    let c = churn(4);
    let span = Nanos::from_millis(20);
    for seed in [1u64, 7, 42, 0xdead_beef] {
        let a = c.schedule(seed, span);
        let b = c.schedule(seed, span);
        assert_eq!(a, b, "seed {seed}: replay must be bit-identical");
        assert!(!a.is_empty());
    }
}

#[test]
fn different_seeds_give_different_schedules() {
    let c = churn(4);
    let span = Nanos::from_millis(20);
    let a = c.schedule(1, span);
    let b = c.schedule(2, span);
    assert_ne!(a, b, "distinct seeds should not collide");
}

#[test]
fn events_stay_inside_span_and_phases_are_monotone() {
    let c = churn(6);
    let span = Nanos::from_millis(50);
    let ev = c.schedule(99, span);
    assert!(ev.iter().all(|e| e.at < span));
    for ti in 0..6 {
        let mine: Vec<_> = ev.iter().filter(|e| e.tenant == ti).collect();
        assert!(!mine.is_empty(), "tenant {ti} has no events");
        assert_eq!(mine[0].kind, LifecycleEventKind::Arrive);
        assert!(
            mine.windows(2)
                .all(|w| w[0].kind < w[1].kind && w[0].at < w[1].at),
            "tenant {ti}: phases must progress arrive -> grow -> shrink -> depart"
        );
    }
}

#[test]
fn tenant_count_changes_schedule_but_prefix_tenants_keep_phases() {
    // Adding a tenant may not silently reorder existing tenants' phase
    // structure: each still arrives first and progresses in order.
    let span = Nanos::from_millis(20);
    let ev = churn(5).schedule(17, span);
    for ti in 0..5 {
        let mine: Vec<_> = ev.iter().filter(|e| e.tenant == ti).collect();
        assert_eq!(mine[0].kind, LifecycleEventKind::Arrive);
        assert!(mine.windows(2).all(|w| w[0].kind < w[1].kind));
    }
}
