//! Property tests for the workload generator: empirical rates, the
//! closed-loop concurrency bound, and schedule determinism.

use proptest::prelude::*;
use simkit::Nanos;
use workgen::{Arrival, Engine, OpKind, SloSpec, TenantSpec, WorkloadSpec};

use cxl_pool_core::pod::{PodParams, PodSim};

fn small_pod(seed: u64) -> PodSim {
    let mut p = PodParams::new(4, 2);
    p.ssd_hosts = vec![0];
    p.seed = seed;
    PodSim::new(p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// An open-loop schedule's empirical rate converges to the
    /// configured mean rate. The span is sized for >= 1000 expected
    /// arrivals, so a 20% tolerance sits far beyond 3 sigma for the
    /// Poisson component; the MMPP's dwell sampling adds variance,
    /// covered by the same margin because each state dwells many times.
    #[test]
    fn open_loop_empirical_rate_tracks_mean(
        seed in any::<u64>(),
        which in 0u8..3,
        rate_k in 20u64..200,
    ) {
        let rate = rate_k as f64 * 1_000.0;
        let arrival = match which {
            0 => Arrival::Poisson { rate_pps: rate },
            1 => Arrival::Bursty {
                low_pps: rate * 0.5,
                high_pps: rate * 1.5,
                dwell_low: Nanos::from_micros(150),
                dwell_high: Nanos::from_micros(150),
            },
            _ => Arrival::Diurnal {
                base_pps: rate * 0.5,
                peak_pps: rate * 1.5,
                // Whole periods inside the span keep the mean exact.
                period: Nanos::from_millis(5),
            },
        };
        let span = Nanos::from_millis(50);
        let sched = arrival.schedule(seed, span);
        let mean = arrival.mean_rate_pps().expect("open loop");
        let expected = mean * span.as_secs_f64();
        let got = sched.len() as f64;
        prop_assert!(
            (got - expected).abs() <= expected * 0.20,
            "expected ~{expected:.0} arrivals, got {got}"
        );
    }

    /// Same seed, same schedule — bit for bit; a different seed moves
    /// at least one arrival.
    #[test]
    fn schedules_are_a_pure_function_of_the_seed(
        seed in any::<u64>(),
        rate_k in 10u64..100,
    ) {
        let a = Arrival::Bursty {
            low_pps: rate_k as f64 * 500.0,
            high_pps: rate_k as f64 * 2_000.0,
            dwell_low: Nanos::from_micros(200),
            dwell_high: Nanos::from_micros(100),
        };
        let span = Nanos::from_millis(5);
        let s1 = a.schedule(seed, span);
        let s2 = a.schedule(seed, span);
        prop_assert_eq!(&s1, &s2);
        let s3 = a.schedule(seed ^ 0x9E37_79B9_7F4A_7C15, span);
        prop_assert!(s1.is_empty() || s1 != s3, "distinct seeds should differ");
    }

    /// A closed-loop tenant never has more operations outstanding than
    /// its configured concurrency, whatever the pod looks like.
    #[test]
    fn closed_loop_respects_concurrency_bound(
        seed in any::<u64>(),
        concurrency in 1usize..6,
        think_us in 0u64..10,
    ) {
        let spec = WorkloadSpec {
            tenants: vec![TenantSpec {
                name: "bound".into(),
                arrival: Arrival::ClosedLoop {
                    concurrency,
                    think: Nanos::from_micros(think_us),
                },
                mix: vec![
                    (OpKind::NicSend { bytes: 256 }, 0.7),
                    (OpKind::SsdRead { blocks: 1 }, 0.3),
                ],
                hosts: vec![2, 3],
                slo: SloSpec::p99(Nanos::from_millis(1)),
            }],
            warmup: Nanos::from_micros(50),
            measure: Nanos::from_micros(400),
            op_timeout: Nanos::from_micros(200),
            balance_every: None,
            fault: None,
            churn: None,
        };
        let mut pod = small_pod(seed);
        let report = Engine::new(seed).run(&mut pod, &spec);
        let t = &report.tenants[0];
        prop_assert!(
            t.peak_in_flight <= concurrency,
            "{} in flight with concurrency {concurrency}",
            t.peak_in_flight
        );
        prop_assert!(t.ops > 0, "closed loop should complete work");
    }
}
