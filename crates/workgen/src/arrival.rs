//! Deterministic, seeded arrival processes.
//!
//! Open-loop processes pre-compute their whole schedule from a seed, so
//! the offered load is independent of how fast the pod serves it — the
//! property that makes saturation visible as growing queueing delay.
//! The closed-loop process has no schedule: each of its workers issues
//! the next operation only after the previous one completes.

use simkit::rng::Rng;
use simkit::Nanos;

/// An arrival process for one tenant.
#[derive(Clone, Debug, PartialEq)]
pub enum Arrival {
    /// Open-loop Poisson arrivals at a constant rate.
    Poisson {
        /// Offered rate in operations per second.
        rate_pps: f64,
    },
    /// Open-loop two-state Markov-modulated Poisson process: the rate
    /// alternates between a low and a high state with exponentially
    /// distributed dwell times (bursty traffic).
    Bursty {
        /// Rate while in the low state (ops/s).
        low_pps: f64,
        /// Rate while in the high state (ops/s).
        high_pps: f64,
        /// Mean dwell time in the low state.
        dwell_low: Nanos,
        /// Mean dwell time in the high state.
        dwell_high: Nanos,
    },
    /// Open-loop non-homogeneous Poisson whose rate ramps sinusoidally
    /// from `base_pps` up to `peak_pps` and back over each `period`
    /// (a compressed diurnal curve), sampled by thinning.
    Diurnal {
        /// Trough rate (ops/s).
        base_pps: f64,
        /// Peak rate (ops/s).
        peak_pps: f64,
        /// Length of one full trough-peak-trough cycle.
        period: Nanos,
    },
    /// Closed loop: `concurrency` workers, each re-issuing `think`
    /// after its previous operation completes. Offered load adapts to
    /// service capacity, so it can never overload the pod.
    ClosedLoop {
        /// Number of concurrent workers (outstanding-op bound).
        concurrency: usize,
        /// Think time between a completion and the worker's next issue.
        think: Nanos,
    },
}

impl Arrival {
    /// True for processes whose arrivals are independent of completions.
    pub fn is_open_loop(&self) -> bool {
        !matches!(self, Arrival::ClosedLoop { .. })
    }

    /// Long-run mean offered rate in ops/s (None for closed loop,
    /// whose rate is whatever the pod sustains).
    pub fn mean_rate_pps(&self) -> Option<f64> {
        match *self {
            Arrival::Poisson { rate_pps } => Some(rate_pps),
            Arrival::Bursty {
                low_pps,
                high_pps,
                dwell_low,
                dwell_high,
            } => {
                let (dl, dh) = (dwell_low.as_nanos() as f64, dwell_high.as_nanos() as f64);
                Some((low_pps * dl + high_pps * dh) / (dl + dh))
            }
            // The sinusoid ramp averages to the midpoint over a period.
            Arrival::Diurnal {
                base_pps, peak_pps, ..
            } => Some((base_pps + peak_pps) / 2.0),
            Arrival::ClosedLoop { .. } => None,
        }
    }

    /// The same process with every open-loop rate multiplied by
    /// `factor` (capacity search sweeps this). Closed-loop processes
    /// scale their worker count instead, never below one worker.
    pub fn scaled(&self, factor: f64) -> Arrival {
        assert!(factor > 0.0, "scale factor must be positive");
        match *self {
            Arrival::Poisson { rate_pps } => Arrival::Poisson {
                rate_pps: rate_pps * factor,
            },
            Arrival::Bursty {
                low_pps,
                high_pps,
                dwell_low,
                dwell_high,
            } => Arrival::Bursty {
                low_pps: low_pps * factor,
                high_pps: high_pps * factor,
                dwell_low,
                dwell_high,
            },
            Arrival::Diurnal {
                base_pps,
                peak_pps,
                period,
            } => Arrival::Diurnal {
                base_pps: base_pps * factor,
                peak_pps: peak_pps * factor,
                period,
            },
            Arrival::ClosedLoop { concurrency, think } => Arrival::ClosedLoop {
                concurrency: ((concurrency as f64 * factor).round() as usize).max(1),
                think,
            },
        }
    }

    /// Pre-computes the open-loop arrival schedule over `[0, span)` as
    /// offsets from the run start, strictly derived from `seed` (the
    /// same seed yields a bit-identical schedule). Closed-loop
    /// processes return an empty schedule — their issues are driven by
    /// completions, not a clock.
    pub fn schedule(&self, seed: u64, span: Nanos) -> Vec<Nanos> {
        let mut rng = Rng::new(seed);
        let mut out = Vec::new();
        match *self {
            Arrival::Poisson { rate_pps } => {
                assert!(rate_pps > 0.0, "rate must be positive");
                let mean_gap = 1e9 / rate_pps;
                let mut t = 0.0f64;
                loop {
                    t += rng.exp(mean_gap).max(1.0);
                    if t >= span.as_nanos() as f64 {
                        break;
                    }
                    out.push(Nanos(t as u64));
                }
            }
            Arrival::Bursty {
                low_pps,
                high_pps,
                dwell_low,
                dwell_high,
            } => {
                assert!(low_pps > 0.0 && high_pps > 0.0, "rates must be positive");
                let span_ns = span.as_nanos() as f64;
                let mut t = 0.0f64;
                let mut high = false;
                let mut state_end = rng.exp(dwell_low.as_nanos() as f64);
                // Exponential gaps are memoryless, so re-drawing the
                // gap at each state boundary samples the MMPP exactly.
                loop {
                    let rate = if high { high_pps } else { low_pps };
                    let gap = rng.exp(1e9 / rate).max(1.0);
                    if t + gap >= state_end {
                        t = state_end;
                        high = !high;
                        let dwell = if high { dwell_high } else { dwell_low };
                        state_end = t + rng.exp(dwell.as_nanos() as f64);
                        if t >= span_ns {
                            break;
                        }
                        continue;
                    }
                    t += gap;
                    if t >= span_ns {
                        break;
                    }
                    out.push(Nanos(t as u64));
                }
            }
            Arrival::Diurnal {
                base_pps,
                peak_pps,
                period,
            } => {
                assert!(
                    base_pps > 0.0 && peak_pps >= base_pps,
                    "need 0 < base <= peak"
                );
                // Lewis–Shedler thinning against the peak rate.
                let span_ns = span.as_nanos() as f64;
                let period_ns = period.as_nanos() as f64;
                let mean_gap = 1e9 / peak_pps;
                let mut t = 0.0f64;
                loop {
                    t += rng.exp(mean_gap).max(1.0);
                    if t >= span_ns {
                        break;
                    }
                    let phase = (core::f64::consts::TAU * t / period_ns).cos();
                    let rate = base_pps + (peak_pps - base_pps) * 0.5 * (1.0 - phase);
                    if rng.chance(rate / peak_pps) {
                        out.push(Nanos(t as u64));
                    }
                }
            }
            Arrival::ClosedLoop { .. } => {}
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_rate(a: &Arrival, seed: u64, span: Nanos) -> f64 {
        a.schedule(seed, span).len() as f64 / span.as_secs_f64()
    }

    #[test]
    fn poisson_rate_matches_configured() {
        let a = Arrival::Poisson { rate_pps: 50_000.0 };
        let got = empirical_rate(&a, 7, Nanos::from_secs(2));
        assert!(
            (got - 50_000.0).abs() / 50_000.0 < 0.05,
            "empirical {got} pps"
        );
    }

    #[test]
    fn bursty_rate_matches_time_weighted_mean() {
        let a = Arrival::Bursty {
            low_pps: 10_000.0,
            high_pps: 90_000.0,
            dwell_low: Nanos::from_millis(3),
            dwell_high: Nanos::from_millis(1),
        };
        let want = a.mean_rate_pps().unwrap();
        let got = empirical_rate(&a, 11, Nanos::from_secs(4));
        assert!((got - want).abs() / want < 0.10, "got {got}, want {want}");
    }

    #[test]
    fn diurnal_rate_matches_midpoint_over_whole_periods() {
        let a = Arrival::Diurnal {
            base_pps: 20_000.0,
            peak_pps: 100_000.0,
            period: Nanos::from_millis(10),
        };
        // An integral number of periods so the sinusoid averages out.
        let got = empirical_rate(&a, 3, Nanos::from_millis(1000));
        let want = a.mean_rate_pps().unwrap();
        assert!((got - want).abs() / want < 0.05, "got {got}, want {want}");
    }

    #[test]
    fn schedules_are_sorted_and_in_span() {
        for a in [
            Arrival::Poisson { rate_pps: 5_000.0 },
            Arrival::Bursty {
                low_pps: 2_000.0,
                high_pps: 20_000.0,
                dwell_low: Nanos::from_millis(1),
                dwell_high: Nanos::from_millis(1),
            },
            Arrival::Diurnal {
                base_pps: 1_000.0,
                peak_pps: 10_000.0,
                period: Nanos::from_millis(5),
            },
        ] {
            let span = Nanos::from_millis(50);
            let s = a.schedule(42, span);
            assert!(!s.is_empty());
            assert!(s.windows(2).all(|w| w[0] <= w[1]), "sorted");
            assert!(s.iter().all(|&t| t < span), "in span");
        }
    }

    #[test]
    fn same_seed_same_schedule_different_seed_differs() {
        let a = Arrival::Poisson { rate_pps: 10_000.0 };
        let span = Nanos::from_millis(100);
        assert_eq!(a.schedule(9, span), a.schedule(9, span));
        assert_ne!(a.schedule(9, span), a.schedule(10, span));
    }

    #[test]
    fn closed_loop_has_no_schedule_and_no_rate() {
        let a = Arrival::ClosedLoop {
            concurrency: 8,
            think: Nanos(500),
        };
        assert!(!a.is_open_loop());
        assert!(a.mean_rate_pps().is_none());
        assert!(a.schedule(1, Nanos::from_millis(10)).is_empty());
    }

    #[test]
    fn scaling_scales_rates_and_workers() {
        let p = Arrival::Poisson { rate_pps: 1_000.0 }.scaled(2.5);
        assert_eq!(p, Arrival::Poisson { rate_pps: 2_500.0 });
        let c = Arrival::ClosedLoop {
            concurrency: 4,
            think: Nanos(100),
        }
        .scaled(0.1);
        assert_eq!(
            c,
            Arrival::ClosedLoop {
                concurrency: 1,
                think: Nanos(100)
            }
        );
    }
}
