//! Service-level objectives over measured latency distributions.

use simkit::stats::{Histogram, Summary};
use simkit::Nanos;

/// A latency SLO: "the `quantile` latency stays under `limit`, with at
/// most `max_error_frac` of operations failing outright".
///
/// Timed-out operations are recorded *censored at their deadline* by
/// the engine, so they both count toward the error fraction and drag
/// the measured tail up — an overloaded or faulted pod cannot pass by
/// dropping its slowest requests.
#[derive(Clone, Copy, Debug)]
pub struct SloSpec {
    /// Quantile being constrained, in `(0, 1]` (0.99 = p99).
    pub quantile: f64,
    /// Latency bound for that quantile.
    pub limit: Nanos,
    /// Tolerated fraction of failed/timed-out operations.
    pub max_error_frac: f64,
}

impl SloSpec {
    /// The common case: `p99 < limit`, no tolerated errors.
    pub fn p99(limit: Nanos) -> SloSpec {
        SloSpec {
            quantile: 0.99,
            limit,
            max_error_frac: 0.0,
        }
    }

    /// Checks the SLO against a measured distribution.
    ///
    /// `errors` is the number of failed operations among `hist`'s
    /// samples (already censored into the histogram). An empty
    /// distribution fails: a tenant that got no operations through its
    /// measurement window is not meeting any objective.
    pub fn check(&self, hist: &Histogram, errors: u64) -> SloVerdict {
        let observed = Nanos(hist.quantile(self.quantile));
        let ops = hist.count();
        let error_frac = if ops == 0 {
            1.0
        } else {
            errors as f64 / ops as f64
        };
        SloVerdict {
            pass: ops > 0 && observed <= self.limit && error_frac <= self.max_error_frac,
            observed,
            spec: *self,
            ops,
            errors,
        }
    }
}

/// The outcome of checking one [`SloSpec`].
#[derive(Clone, Copy, Debug)]
pub struct SloVerdict {
    /// Whether the SLO held.
    pub pass: bool,
    /// The observed latency at the constrained quantile.
    pub observed: Nanos,
    /// The spec that was checked.
    pub spec: SloSpec,
    /// Operations measured (including censored failures).
    pub ops: u64,
    /// Failed/timed-out operations among them.
    pub errors: u64,
}

/// Convenience: summary of the distribution a verdict was drawn from.
pub fn summarize(hist: &Histogram) -> Summary {
    hist.summary()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(values: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn passes_under_limit() {
        let h = hist(&[1_000; 100]);
        let v = SloSpec::p99(Nanos::from_micros(10)).check(&h, 0);
        assert!(v.pass);
        assert!(v.observed <= Nanos::from_micros(2));
    }

    #[test]
    fn fails_when_tail_exceeds_limit() {
        let mut values = vec![1_000u64; 95];
        values.extend([100_000; 5]); // 5% at 100µs.
        let v = SloSpec::p99(Nanos::from_micros(10)).check(&hist(&values), 0);
        assert!(!v.pass);
        assert!(v.observed > Nanos::from_micros(10));
    }

    #[test]
    fn errors_fail_a_zero_tolerance_slo() {
        let h = hist(&[1_000; 100]);
        let v = SloSpec::p99(Nanos::from_micros(10)).check(&h, 1);
        assert!(!v.pass, "one error must break max_error_frac = 0");
    }

    #[test]
    fn error_budget_tolerates_some_failures() {
        let slo = SloSpec {
            quantile: 0.5,
            limit: Nanos::from_micros(10),
            max_error_frac: 0.05,
        };
        let h = hist(&[1_000; 100]);
        assert!(slo.check(&h, 4).pass);
        assert!(!slo.check(&h, 6).pass);
    }

    #[test]
    fn empty_distribution_fails() {
        let v = SloSpec::p99(Nanos::from_micros(10)).check(&Histogram::new(), 0);
        assert!(!v.pass);
        assert_eq!(v.ops, 0);
    }
}
