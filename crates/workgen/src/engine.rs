//! The workload engine: drives a [`PodSim`] through a [`WorkloadSpec`]
//! in simulated time.
//!
//! Open-loop tenants pre-compute their arrival schedules from the seed;
//! the engine issues each operation at (or as soon as possible after)
//! its scheduled arrival and measures latency *from the scheduled
//! arrival*, so a pod that falls behind accumulates queueing delay and
//! the tail blows up — the hockey stick every capacity search walks.
//! Closed-loop tenants run fixed-concurrency workers whose latency is
//! measured from the actual issue instant.
//!
//! Operations scheduled inside the warmup window run but are not
//! recorded; the measurement window follows. Failed or timed-out
//! operations are censored at the per-op deadline and counted as
//! errors (see [`crate::slo`]).

use std::collections::BTreeMap;

use cxl_fabric::{DomainId, HostId, MhdId};
use cxl_pool_core::lifecycle::{self as pod_lifecycle, TenantState};
use cxl_pool_core::pod::{PodSim, IO_SLOT};
use cxl_pool_core::vdev::{DeviceKind, PoolError};
use pcie_sim::DeviceId;
use simkit::metrics::{Labels, MetricId};
use simkit::rng::Rng;
use simkit::stats::{Histogram, Summary};
use simkit::Nanos;

use crate::arrival::Arrival;
use crate::lifecycle::{thin_schedule, ChurnSpec, LifecycleEvent, LifecycleEventKind};
use crate::slo::SloVerdict;
use crate::spec::{FaultTarget, OpKind, TenantSpec, WorkloadSpec};

/// Per-tenant results for one run.
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Mean offered rate (ops/s) over the measurement window; for
    /// closed-loop tenants this equals the achieved rate.
    pub offered_pps: f64,
    /// Successfully completed measured ops per second.
    pub achieved_pps: f64,
    /// Operations measured (including censored failures).
    pub ops: u64,
    /// Failed or timed-out operations among them.
    pub errors: u64,
    /// Measured latency distribution (ns).
    pub latency: Summary,
    /// The SLO verdict for this tenant.
    pub verdict: SloVerdict,
    /// Largest number of simultaneously outstanding operations
    /// (closed-loop tenants only; 0 for open loop).
    pub peak_in_flight: usize,
}

/// One applied lifecycle event, for reports and JSON.
#[derive(Clone, Debug)]
pub struct LifecycleEventReport {
    /// Offset from run start at which the event applied.
    pub at: Nanos,
    /// Churn tenant name.
    pub tenant: String,
    /// `"arrive"`, `"grow"`, `"shrink"` or `"depart"`.
    pub event: &'static str,
    /// True when the event triggered a live migration.
    pub migrated: bool,
    /// Blackout window of that migration, when one happened.
    pub blackout: Option<Nanos>,
}

/// The outcome of one engine run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Per-tenant results (residents first, then churn tenants).
    pub tenants: Vec<TenantReport>,
    /// Per-operation-class latency summaries, sorted by label.
    pub kinds: Vec<(&'static str, Summary)>,
    /// Total offered rate of the open-loop tenants (ops/s).
    pub offered_pps: f64,
    /// Total achieved rate across tenants (ops/s).
    pub achieved_pps: f64,
    /// Measured operations across tenants.
    pub ops: u64,
    /// Errors across tenants.
    pub errors: u64,
    /// Simulated time consumed by the run.
    pub elapsed: Nanos,
    /// Applied tenant-lifecycle events, in order (empty without churn).
    pub lifecycle: Vec<LifecycleEventReport>,
}

impl RunReport {
    /// True when every tenant met its SLO.
    pub fn all_slos_pass(&self) -> bool {
        self.tenants.iter().all(|t| t.verdict.pass)
    }
}

/// One pending issue source during the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Issue {
    /// Absolute simulated time of the (scheduled) issue.
    at: Nanos,
    /// Tenant index.
    tenant: usize,
    /// Closed-loop worker index, usize::MAX for open-loop arrivals.
    worker: usize,
}

/// Per-tenant metric handles, registered when the pod's metrics plane
/// is on (see `simkit::metrics`): an in-flight gauge, cumulative
/// completion/error counters and a running SLO-attainment fraction.
struct TenantMetricIds {
    /// `tenant/in_flight`.
    in_flight: MetricId,
    /// `tenant/completed`.
    completed: MetricId,
    /// `tenant/errors`.
    errors: MetricId,
    /// `tenant/slo_attainment`.
    slo: MetricId,
}

/// The workload engine. Construction is free; all state lives in
/// [`Engine::run`].
#[derive(Clone, Copy, Debug)]
pub struct Engine {
    seed: u64,
}

impl Engine {
    /// Creates an engine whose every random choice derives from `seed`.
    pub fn new(seed: u64) -> Engine {
        Engine { seed }
    }

    /// Runs `spec` against `pod` and reports per-tenant latency and
    /// SLO verdicts. Panics if the spec does not validate against the
    /// pod (use [`WorkloadSpec::validate`] to pre-check).
    pub fn run(&self, pod: &mut PodSim, spec: &WorkloadSpec) -> RunReport {
        let kinds = pod.kinds_available();
        spec.validate(pod.agents.len() as u16, &kinds)
            .expect("workload spec fits the pod");

        let t0 = pod.time();
        let span = spec.warmup + spec.measure;
        let meas_start = t0 + spec.warmup;
        let meas_end = t0 + span;

        // Seed derivation: one schedule stream and one choice stream
        // per tenant, all forked from the master in tenant order.
        let mut master = Rng::new(self.seed);
        let mut schedules: Vec<Vec<Nanos>> = Vec::new();
        let mut choice_rngs: Vec<Rng> = Vec::new();
        for t in &spec.tenants {
            let sched_seed = master.next_u64();
            schedules.push(t.arrival.schedule(sched_seed, span));
            choice_rngs.push(master.fork());
        }

        // Churn: the lifecycle event schedule and the churn tenants'
        // thinned peak-rate schedules derive from the same master
        // stream, *after* the residents — a churn-free spec replays
        // bit-identically to a pre-churn engine.
        let churn = spec.churn.as_ref();
        let mut events: Vec<LifecycleEvent> = Vec::new();
        if let Some(c) = churn {
            let ev_seed = master.next_u64();
            events = c.schedule(ev_seed, span);
            for (ci, ct) in c.tenants.iter().enumerate() {
                let sched_seed = master.next_u64();
                let full = ct.spec.arrival.schedule(sched_seed, span);
                schedules.push(thin_schedule(full, &events, ci));
                choice_rngs.push(master.fork());
            }
        }
        let all_tenants: Vec<&TenantSpec> = spec
            .tenants
            .iter()
            .chain(
                churn
                    .into_iter()
                    .flat_map(|c| c.tenants.iter().map(|ct| &ct.spec)),
            )
            .collect();
        let resident_n = spec.tenants.len();

        // Issue sources: open-loop cursors + closed-loop workers.
        let mut cursors = vec![0usize; all_tenants.len()];
        let mut workers: Vec<Issue> = Vec::new();
        for (ti, t) in spec.tenants.iter().enumerate() {
            if let Arrival::ClosedLoop { concurrency, .. } = t.arrival {
                for w in 0..concurrency {
                    workers.push(Issue {
                        at: t0,
                        tenant: ti,
                        worker: w,
                    });
                }
            }
        }

        // Measurement state.
        let n = all_tenants.len();
        let mut hists: Vec<Histogram> = vec![Histogram::new(); n];
        let mut errors = vec![0u64; n];
        let mut completed = vec![0u64; n];
        let mut kind_hists: BTreeMap<&'static str, Histogram> = BTreeMap::new();
        let mut intervals: Vec<Vec<(Nanos, Nanos)>> = vec![Vec::new(); n];
        let mut host_issued: BTreeMap<u16, u64> = BTreeMap::new();
        let mut within_slo = vec![0u64; n];

        // Per-tenant timelines on the pod's metrics plane, if enabled.
        // Gauges are refreshed around each executed op; the pod's
        // simulated-time sampler does the periodic recording.
        let tenant_metrics: Option<Vec<TenantMetricIds>> = pod.metrics_mut().map(|rec| {
            (0..n as u16)
                .map(|ti| TenantMetricIds {
                    in_flight: rec.gauge("tenant/in_flight", Labels::tenant(ti)),
                    completed: rec.counter("tenant/completed", Labels::tenant(ti)),
                    errors: rec.counter("tenant/errors", Labels::tenant(ti)),
                    slo: rec.gauge("tenant/slo_attainment", Labels::tenant(ti)),
                })
                .collect()
        });

        // Fault plan state.
        let mut fault_pending = spec.fault;
        let mut heal_at: Option<(Nanos, FaultTarget)> = None;
        let mut next_balance = spec.balance_every.map(|every| t0 + every);

        // Lifecycle runtime state: pool-resident tenant state, current
        // activity level per churn tenant, and the applied-event log.
        let churn_count = churn.map_or(0, |c| c.tenants.len());
        let mut lc_states: Vec<Option<TenantState>> = (0..churn_count).map(|_| None).collect();
        let mut lc_levels: Vec<f64> = vec![0.0; churn_count];
        let mut lc_next = 0usize;
        let mut lifecycle_log: Vec<LifecycleEventReport> = Vec::new();

        loop {
            // Earliest pending issue, deterministic tie-break.
            let open_head = cursors
                .iter()
                .enumerate()
                .filter_map(|(ti, &c)| {
                    schedules[ti].get(c).map(|&off| Issue {
                        at: t0 + off,
                        tenant: ti,
                        worker: usize::MAX,
                    })
                })
                .min_by_key(|i| (i.at, i.tenant));
            let worker_head = workers
                .iter()
                .filter(|i| i.at < meas_end)
                .min_by_key(|i| (i.at, i.tenant, i.worker))
                .copied();
            let issue = match (open_head, worker_head) {
                (Some(a), Some(b)) => {
                    if (a.at, a.tenant, a.worker) <= (b.at, b.tenant, b.worker) {
                        a
                    } else {
                        b
                    }
                }
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };

            // Fault plan: fail the target (one MHD or a whole failure
            // domain) once the schedule crosses the plan's offset,
            // recover `heal_after` later.
            if let Some(f) = fault_pending {
                if issue.at >= t0 + f.at {
                    match f.target {
                        FaultTarget::Mhd(m) => pod.fabric.topology_mut().fail_mhd(MhdId(m)),
                        FaultTarget::Domain(d) => {
                            pod.fabric.topology_mut().fail_domain(DomainId(d))
                        }
                    }
                    heal_at = Some((t0 + f.at + f.heal_after, f.target));
                    fault_pending = None;
                }
            }
            if let Some((t, target)) = heal_at {
                if issue.at >= t {
                    match target {
                        FaultTarget::Mhd(m) => {
                            pod.recover_pool_failure(MhdId(m));
                        }
                        FaultTarget::Domain(d) => {
                            pod.recover_domain_failure(DomainId(d));
                        }
                    }
                    heal_at = None;
                }
            }

            // Tenant lifecycle: apply every event the schedule has
            // crossed (same pattern as the fault plan).
            while let Some(&ev) = events.get(lc_next) {
                if issue.at < t0 + ev.at {
                    break;
                }
                lc_next += 1;
                let c = churn.expect("lifecycle events imply a churn spec");
                apply_lifecycle_event(
                    pod,
                    spec,
                    c,
                    &ev,
                    &mut lc_states,
                    &mut lc_levels,
                    &mut lifecycle_log,
                );
            }

            // Control-plane feedback: report per-host issue counts as
            // loads and let the orchestrator rebalance.
            if let (Some(t), Some(every)) = (next_balance, spec.balance_every) {
                if issue.at >= t {
                    let peak = host_issued.values().copied().max().unwrap_or(0).max(1);
                    for (&h, &count) in &host_issued {
                        let load = ((count * 100) / peak).min(100) as u8;
                        pod.report_host_load(HostId(h), load);
                    }
                    host_issued.clear();
                    pod.rebalance(30);
                    next_balance = Some(t + every);
                }
            }

            // Let the pod idle forward to the scheduled issue.
            let now = pod.time();
            if now < issue.at {
                pod.run_control(issue.at - now);
            }

            // Advance this source past the issue we are about to run.
            let tenant = all_tenants[issue.tenant];
            let closed = issue.worker != usize::MAX;
            if !closed {
                cursors[issue.tenant] += 1;
            }

            // Pick host and op class from the tenant's choice stream.
            let rng = &mut choice_rngs[issue.tenant];
            let host = tenant.hosts[rng.below(tenant.hosts.len() as u64) as usize];
            let weights: Vec<f64> = tenant.mix.iter().map(|&(_, w)| w).collect();
            let op = tenant.mix[rng.weighted(&weights)].0;
            let lba = rng.below(1 << 16);
            *host_issued.entry(host).or_insert(0) += 1;

            // Execute. Open loop measures from the scheduled arrival
            // (queueing delay included); closed loop from the actual
            // issue instant.
            let start = if closed {
                pod.time().max(issue.at)
            } else {
                issue.at
            };
            let deadline = pod.time().max(issue.at) + spec.op_timeout;
            if let Some(tm) = &tenant_metrics {
                let id = tm[issue.tenant].in_flight;
                if let Some(rec) = pod.metrics_mut() {
                    rec.gauge_set(id, 1.0);
                }
            }
            let result = execute(pod, HostId(host), op, lba, issue.at, deadline);
            let (end, failed) = match result {
                Ok(done) => (done, false),
                Err(_) => (deadline, true),
            };
            let latency = end.saturating_sub(start);

            let measured = issue.at >= meas_start && issue.at < meas_end;
            if measured {
                hists[issue.tenant].record_nanos(latency);
                kind_hists
                    .entry(op.label())
                    .or_default()
                    .record_nanos(latency);
                if failed {
                    errors[issue.tenant] += 1;
                } else {
                    completed[issue.tenant] += 1;
                }
                if closed {
                    intervals[issue.tenant].push((start, end));
                }
                if !failed && latency <= tenant.slo.limit {
                    within_slo[issue.tenant] += 1;
                }
            }
            if let Some(tm) = &tenant_metrics {
                let ids = &tm[issue.tenant];
                let measured_ops = hists[issue.tenant].count();
                let attainment = if measured_ops == 0 {
                    1.0
                } else {
                    within_slo[issue.tenant] as f64 / measured_ops as f64
                };
                let (in_flight, done, errs, slo) =
                    (ids.in_flight, ids.completed, ids.errors, ids.slo);
                let (done_v, errs_v) = (completed[issue.tenant], errors[issue.tenant]);
                if let Some(rec) = pod.metrics_mut() {
                    rec.gauge_set(in_flight, 0.0);
                    rec.gauge_set(done, done_v as f64);
                    rec.gauge_set(errs, errs_v as f64);
                    rec.gauge_set(slo, attainment);
                }
            }

            // Closed-loop worker reschedule.
            if closed {
                if let Arrival::ClosedLoop { think, .. } = tenant.arrival {
                    let slot = workers
                        .iter_mut()
                        .find(|i| i.tenant == issue.tenant && i.worker == issue.worker)
                        .expect("worker exists");
                    slot.at = end.max(issue.at) + think;
                }
            }
        }

        // Run out the remaining lifecycle events (departures scheduled
        // after the last issued op), then reclaim any tenant still
        // resident so the pod hands back every churn-owned segment.
        if let Some(c) = churn {
            while let Some(&ev) = events.get(lc_next) {
                lc_next += 1;
                apply_lifecycle_event(
                    pod,
                    spec,
                    c,
                    &ev,
                    &mut lc_states,
                    &mut lc_levels,
                    &mut lifecycle_log,
                );
            }
            for st in lc_states.into_iter().flatten() {
                st.release(pod);
            }
        }

        // Reduce.
        let secs = spec.measure.as_secs_f64();
        let mut tenants = Vec::with_capacity(n);
        for (ti, t) in all_tenants.iter().enumerate() {
            let achieved = completed[ti] as f64 / secs;
            // A churn tenant's offered rate is what its thinned
            // schedule actually put inside the measurement window.
            let offered = if ti >= resident_n {
                schedules[ti]
                    .iter()
                    .filter(|&&off| off >= spec.warmup && off < span)
                    .count() as f64
                    / secs
            } else {
                t.arrival.mean_rate_pps().unwrap_or(achieved)
            };
            tenants.push(TenantReport {
                name: t.name.clone(),
                offered_pps: offered,
                achieved_pps: achieved,
                ops: hists[ti].count(),
                errors: errors[ti],
                latency: hists[ti].summary(),
                verdict: t.slo.check(&hists[ti], errors[ti]),
                peak_in_flight: peak_overlap(&mut intervals[ti]),
            });
        }
        let achieved_total = tenants.iter().map(|t| t.achieved_pps).sum();
        RunReport {
            kinds: kind_hists
                .into_iter()
                .map(|(k, h)| (k, h.summary()))
                .collect(),
            offered_pps: spec.offered_pps(),
            achieved_pps: achieved_total,
            ops: tenants.iter().map(|t| t.ops).sum(),
            errors: tenants.iter().map(|t| t.errors).sum(),
            elapsed: pod.time().saturating_sub(t0),
            tenants,
            lifecycle: lifecycle_log,
        }
    }
}

/// The device class a churn tenant's traffic is judged on: its
/// heaviest-weighted op's kind.
fn primary_kind(t: &TenantSpec) -> DeviceKind {
    t.mix
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|&(op, _)| op.device_kind())
        .expect("validated mix is non-empty")
}

/// `t`'s mix weight fraction that lands on `kind`.
fn kind_share(t: &TenantSpec, kind: DeviceKind) -> f64 {
    let total: f64 = t
        .mix
        .iter()
        .filter(|&&(_, w)| w > 0.0)
        .map(|&(_, w)| w)
        .sum();
    if total <= 0.0 {
        return 0.0;
    }
    let on: f64 = t
        .mix
        .iter()
        .filter(|&&(op, w)| w > 0.0 && op.device_kind() == kind)
        .map(|&(_, w)| w)
        .sum();
    on / total
}

/// Offered-rate attribution for `kind`, in milli-ops/s per live
/// device: every open-loop tenant's mean rate (scaled by its mix
/// share on `kind` and, for churn tenants, its lifecycle level) is
/// split across its hosts and charged to the device each host is
/// currently bound to. Churn tenant `exclude` is left out so the
/// placement choice reflects the load it would *join*. Deterministic:
/// BTreeMap keying and integer milli-pps totals.
fn device_load_mpps(
    pod: &PodSim,
    spec: &WorkloadSpec,
    churn: &ChurnSpec,
    levels: &[f64],
    kind: DeviceKind,
    exclude: usize,
) -> BTreeMap<DeviceId, u64> {
    let mut load: BTreeMap<DeviceId, u64> = pod
        .orch
        .devices_of(kind)
        .into_iter()
        .filter(|&d| pod.orch.device(d).is_some_and(|i| i.up))
        .map(|d| (d, 0))
        .collect();
    let charge = |load: &mut BTreeMap<DeviceId, u64>, t: &TenantSpec, level: f64| {
        let Some(rate) = t.arrival.mean_rate_pps() else {
            return;
        };
        let share = kind_share(t, kind);
        if share <= 0.0 || level <= 0.0 {
            return;
        }
        let per_host = rate * share * level / t.hosts.len() as f64;
        for &h in &t.hosts {
            if let Some(d) = pod.binding(HostId(h), kind) {
                if let Some(v) = load.get_mut(&d) {
                    *v += (per_host * 1000.0) as u64;
                }
            }
        }
    };
    for t in &spec.tenants {
        charge(&mut load, t, 1.0);
    }
    for (ci, ct) in churn.tenants.iter().enumerate() {
        if ci != exclude {
            charge(&mut load, &ct.spec, levels[ci]);
        }
    }
    load
}

/// Live-migrates churn tenant `ci` to the least-loaded `kind` device
/// if that device carries strictly less attributed load than the
/// tenant's current one. Returns the blackout when a migration ran.
fn rebalance_tenant(
    pod: &mut PodSim,
    spec: &WorkloadSpec,
    c: &ChurnSpec,
    levels: &[f64],
    ci: usize,
    st: &mut TenantState,
    kind: DeviceKind,
) -> Option<Nanos> {
    let load = device_load_mpps(pod, spec, c, levels, kind, ci);
    let cur = pod.binding(st.hosts[0], kind)?;
    let (&target, &target_load) = load.iter().min_by_key(|&(&d, &l)| (l, d))?;
    let cur_load = load.get(&cur).copied().unwrap_or(u64::MAX);
    if target == cur || target_load >= cur_load {
        return None;
    }
    match pod_lifecycle::migrate_tenant(pod, st, kind, target) {
        Ok(Some(rep)) => Some(rep.blackout),
        _ => None,
    }
}

/// Applies one lifecycle event to the pod: arrival provisions and
/// statically places the tenant, grow/shrink re-checkpoint it,
/// departure releases everything it owns. With [`ChurnSpec::migrate`]
/// on, arrival/grow/shrink additionally rebalance by live migration.
fn apply_lifecycle_event(
    pod: &mut PodSim,
    spec: &WorkloadSpec,
    c: &ChurnSpec,
    ev: &LifecycleEvent,
    states: &mut [Option<TenantState>],
    levels: &mut [f64],
    log: &mut Vec<LifecycleEventReport>,
) {
    let ct = &c.tenants[ev.tenant];
    let kind = primary_kind(&ct.spec);
    let mut migrated = None;
    match ev.kind {
        LifecycleEventKind::Arrive => {
            let hosts: Vec<HostId> = ct.spec.hosts.iter().map(|&h| HostId(h)).collect();
            let Ok(mut st) =
                pod_lifecycle::provision(pod, ev.tenant as u16, &hosts, ct.state_len, ct.replicas)
            else {
                return;
            };
            levels[ev.tenant] = ev.kind.level();
            // Naive static placement: every tenant host lands on the
            // spec'd device, migration or not — the baseline the
            // orchestrator's churn response is judged against.
            let devs = pod.orch.devices_of(kind);
            if !devs.is_empty() {
                let naive = devs[ct.naive_dev.min(devs.len() - 1)];
                let now = pod.time();
                for &h in &hosts {
                    if pod.binding(h, kind) != Some(naive) {
                        let _ = pod_lifecycle::rebind(pod, h, kind, naive, now);
                    }
                }
            }
            if c.migrate {
                migrated = rebalance_tenant(pod, spec, c, levels, ev.tenant, &mut st, kind);
            }
            states[ev.tenant] = Some(st);
        }
        LifecycleEventKind::Grow | LifecycleEventKind::Shrink => {
            levels[ev.tenant] = ev.kind.level();
            let Some(mut st) = states[ev.tenant].take() else {
                return;
            };
            let _ = st.checkpoint(pod);
            if c.migrate {
                migrated = rebalance_tenant(pod, spec, c, levels, ev.tenant, &mut st, kind);
            }
            states[ev.tenant] = Some(st);
        }
        LifecycleEventKind::Depart => {
            levels[ev.tenant] = 0.0;
            let Some(st) = states[ev.tenant].take() else {
                return;
            };
            st.release(pod);
        }
    }
    log.push(LifecycleEventReport {
        at: ev.at,
        tenant: ct.spec.name.clone(),
        event: ev.kind.label(),
        migrated: migrated.is_some(),
        blackout: migrated,
    });
}

/// Runs one operation to completion; returns the completion time.
fn execute(
    pod: &mut PodSim,
    host: HostId,
    op: OpKind,
    lba: u64,
    issue_id: Nanos,
    deadline: Nanos,
) -> Result<Nanos, PoolError> {
    match op {
        OpKind::NicSend { bytes } => {
            assert!(bytes as u64 <= IO_SLOT, "payload exceeds an I/O slot");
            let payload = payload(bytes, issue_id);
            pod.vnic_send(host, &payload, deadline).map(|r| r.at)
        }
        OpKind::NicRecv { bytes } => {
            assert!(bytes as u64 <= IO_SLOT, "frame exceeds an I/O slot");
            let dev = pod
                .binding(host, DeviceKind::Nic)
                .ok_or(PoolError::NotAssigned(DeviceKind::Nic))?;
            pod.vnic_post_rx(host, deadline)?;
            let frame = payload(bytes, issue_id);
            pod.deliver_frame(dev, &frame)?;
            let ev = pod
                .vnic_poll_rx(host, deadline)
                .ok_or(PoolError::Timeout { op: 0 })?;
            Ok(ev.at)
        }
        OpKind::SsdRead { blocks } => pod
            .vssd_read(host, lba, blocks, deadline)
            .map(|(_, r)| r.at),
        OpKind::SsdWrite { blocks } => {
            let bytes = (blocks as u64 * 4096).min(IO_SLOT) as u32;
            let data = payload(bytes, issue_id);
            let buf = pod.io_buf(host);
            let now = pod.agents[host.0 as usize].clock();
            let staged = pod.fabric.nt_store(now, host, buf, &data)?;
            pod.agents[host.0 as usize].advance_clock(staged);
            pod.vssd_write(host, lba, blocks, buf, deadline)
                .map(|r| r.at)
        }
        OpKind::AccelRun { bytes } => {
            assert!(bytes as u64 <= IO_SLOT, "input exceeds an I/O slot");
            let input = payload(bytes, issue_id);
            pod.vaccel_run(host, &input, deadline).map(|(_, r)| r.at)
        }
    }
}

/// Deterministic payload bytes for one operation.
fn payload(bytes: u32, issue: Nanos) -> Vec<u8> {
    let tag = (issue.as_nanos() % 251) as u8;
    (0..bytes).map(|i| tag.wrapping_add(i as u8)).collect()
}

/// Maximum number of overlapping `(start, end)` intervals.
fn peak_overlap(intervals: &mut [(Nanos, Nanos)]) -> usize {
    if intervals.is_empty() {
        return 0;
    }
    let mut edges: Vec<(Nanos, i32)> = Vec::with_capacity(intervals.len() * 2);
    for &(s, e) in intervals.iter() {
        edges.push((s, 1));
        // Half-open: an op ending exactly when another starts does not
        // overlap it.
        edges.push((e, -1));
    }
    edges.sort_by_key(|&(t, d)| (t, d));
    let (mut cur, mut peak) = (0i32, 0i32);
    for (_, d) in edges {
        cur += d;
        peak = peak.max(cur);
    }
    peak as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_overlap_counts_concurrency() {
        let mut iv = vec![
            (Nanos(0), Nanos(10)),
            (Nanos(5), Nanos(15)),
            (Nanos(10), Nanos(20)), // starts when the first ends: no overlap
        ];
        assert_eq!(peak_overlap(&mut iv), 2);
        assert_eq!(peak_overlap(&mut []), 0);
    }

    #[test]
    fn payload_is_deterministic() {
        assert_eq!(payload(8, Nanos(100)), payload(8, Nanos(100)));
        assert_eq!(payload(4, Nanos(0)), vec![0, 1, 2, 3]);
    }
}
