//! Deterministic tenant churn: arrive / grow / shrink / depart on a
//! seeded diurnal schedule.
//!
//! A [`ChurnSpec`] adds lifecycle tenants to a workload. Each churn
//! tenant's [`TenantSpec`] carries its *peak* (grown) arrival process;
//! the engine pre-computes the peak-rate schedule, then thins it by
//! the tenant's lifecycle phase ([`thin_schedule`]): nothing before
//! arrival, half rate after arriving, full rate while grown, quarter
//! rate after shrinking, nothing after departure. Both the event
//! schedule and the thinning are pure functions of the seed, so churn
//! runs replay bit-identically.
//!
//! At each event the engine touches the pod through
//! `cxl_pool_core::lifecycle`: arrival provisions the tenant's pool
//! state and pins its hosts to a statically chosen device (the naive
//! placement a no-migration baseline is stuck with); grow/shrink
//! checkpoint the state; departure releases every tenant segment. When
//! [`ChurnSpec::migrate`] is on, the engine additionally live-migrates
//! the tenant to the least-loaded device after each event — the §4.2
//! orchestrator response this module exists to measure.

use simkit::rng::Rng;
use simkit::Nanos;

use crate::spec::TenantSpec;

/// What happens to a churn tenant at a lifecycle event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LifecycleEventKind {
    /// The tenant appears: pool state is provisioned, hosts are bound,
    /// and it starts issuing at half its peak rate.
    Arrive,
    /// The tenant ramps to its full peak rate.
    Grow,
    /// The tenant drops to a quarter of its peak rate.
    Shrink,
    /// The tenant leaves; every segment it owned is reclaimed.
    Depart,
}

impl LifecycleEventKind {
    /// Stable label for reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            LifecycleEventKind::Arrive => "arrive",
            LifecycleEventKind::Grow => "grow",
            LifecycleEventKind::Shrink => "shrink",
            LifecycleEventKind::Depart => "depart",
        }
    }

    /// Thinning divisor for the phase this event starts: keep every
    /// n-th op of the peak-rate schedule (None = inactive).
    pub fn divisor(self) -> Option<u64> {
        match self {
            LifecycleEventKind::Arrive => Some(2),
            LifecycleEventKind::Grow => Some(1),
            LifecycleEventKind::Shrink => Some(4),
            LifecycleEventKind::Depart => None,
        }
    }

    /// Fraction of the tenant's peak rate offered during the phase
    /// this event starts (the reciprocal of [`divisor`]).
    ///
    /// [`divisor`]: LifecycleEventKind::divisor
    pub fn level(self) -> f64 {
        match self.divisor() {
            Some(d) => 1.0 / d as f64,
            None => 0.0,
        }
    }
}

/// One lifecycle event on the churn timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LifecycleEvent {
    /// Offset from run start.
    pub at: Nanos,
    /// Index into [`ChurnSpec::tenants`].
    pub tenant: usize,
    /// What happens.
    pub kind: LifecycleEventKind,
}

/// One churn tenant: a workload spec (at peak rate) plus its pool
/// footprint and the naive static placement the baseline uses.
#[derive(Clone, Debug)]
pub struct ChurnTenant {
    /// The tenant's traffic at peak (grown) rate. Must be open-loop.
    pub spec: TenantSpec,
    /// Bytes of pool-resident tenant state provisioned on arrival.
    pub state_len: u64,
    /// Domain-replicated copies of the state region (0 = none).
    pub replicas: usize,
    /// Index into `devices_of(kind)` for static placement on arrival —
    /// what a pod without live migration is stuck with.
    pub naive_dev: usize,
}

/// First-class tenant churn riding on a workload.
#[derive(Clone, Debug)]
pub struct ChurnSpec {
    /// The churn tenants, appended after the resident tenants.
    pub tenants: Vec<ChurnTenant>,
    /// Live-migrate tenants to the least-loaded device after each
    /// lifecycle event (false = naive static placement baseline).
    pub migrate: bool,
}

impl ChurnSpec {
    /// Generates the lifecycle event schedule over `[0, span)`.
    ///
    /// A pure function of `(seed, span)`: the same inputs yield a
    /// bit-identical event list (the replay property the capacity and
    /// bench self-checks lean on). Each tenant lives one compressed
    /// diurnal day: arrive in the early ramp, grow toward the peak,
    /// shrink in the evening, depart before close — with every offset
    /// drawn from the tenant's forked stream. Events past 95% of the
    /// span are dropped (the tenant then stays in that phase to the
    /// end of the run and is reclaimed by the engine's cleanup).
    /// Sorted by `(at, tenant, kind)`.
    pub fn schedule(&self, seed: u64, span: Nanos) -> Vec<LifecycleEvent> {
        let mut master = Rng::new(seed);
        let span_ns = span.as_nanos() as f64;
        let mut out = Vec::new();
        for (ti, _) in self.tenants.iter().enumerate() {
            let mut rng = master.fork();
            let arrive = 0.05 + 0.15 * rng.f64();
            let grow = arrive + 0.10 + 0.15 * rng.f64();
            let shrink = grow + 0.15 + 0.15 * rng.f64();
            let depart = shrink + 0.10 + 0.15 * rng.f64();
            for (frac, kind) in [
                (arrive, LifecycleEventKind::Arrive),
                (grow, LifecycleEventKind::Grow),
                (shrink, LifecycleEventKind::Shrink),
                (depart, LifecycleEventKind::Depart),
            ] {
                if frac < 0.95 {
                    out.push(LifecycleEvent {
                        at: Nanos((frac * span_ns) as u64),
                        tenant: ti,
                        kind,
                    });
                }
            }
        }
        out.sort_by_key(|e| (e.at, e.tenant, e.kind));
        out
    }
}

/// Thins churn tenant `tenant`'s peak-rate arrival schedule by its
/// lifecycle phase: an op at offset `t` survives only if the tenant is
/// active at `t`, keeping every n-th op per the phase's
/// [`LifecycleEventKind::divisor`]. Deterministic: depends only on
/// the inputs.
pub fn thin_schedule(sched: Vec<Nanos>, events: &[LifecycleEvent], tenant: usize) -> Vec<Nanos> {
    let mine: Vec<&LifecycleEvent> = events.iter().filter(|e| e.tenant == tenant).collect();
    let mut out = Vec::new();
    for (i, off) in sched.into_iter().enumerate() {
        let phase = mine.iter().rev().find(|e| e.at <= off);
        let Some(div) = phase.and_then(|e| e.kind.divisor()) else {
            continue;
        };
        if (i as u64).is_multiple_of(div) {
            out.push(off);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::Arrival;
    use crate::slo::SloSpec;
    use crate::spec::OpKind;

    fn churn(n: usize) -> ChurnSpec {
        ChurnSpec {
            tenants: (0..n)
                .map(|i| ChurnTenant {
                    spec: TenantSpec {
                        name: format!("web-{i}"),
                        arrival: Arrival::Poisson { rate_pps: 10_000.0 },
                        mix: vec![(OpKind::NicSend { bytes: 512 }, 1.0)],
                        hosts: vec![i as u16],
                        slo: SloSpec::p99(Nanos::from_micros(100)),
                    },
                    state_len: 4096,
                    replicas: 0,
                    naive_dev: 0,
                })
                .collect(),
            migrate: true,
        }
    }

    #[test]
    fn events_are_ordered_and_per_tenant_phases_progress() {
        let c = churn(3);
        let span = Nanos::from_millis(10);
        let ev = c.schedule(7, span);
        assert!(ev
            .windows(2)
            .all(|w| (w[0].at, w[0].tenant) <= (w[1].at, w[1].tenant)));
        for ti in 0..3 {
            let mine: Vec<_> = ev.iter().filter(|e| e.tenant == ti).collect();
            assert!(!mine.is_empty());
            assert_eq!(
                mine[0].kind,
                LifecycleEventKind::Arrive,
                "first event arrives"
            );
            assert!(
                mine.windows(2)
                    .all(|w| w[0].kind < w[1].kind && w[0].at < w[1].at),
                "phases progress in order"
            );
            assert!(mine.iter().all(|e| e.at < span));
        }
    }

    #[test]
    fn thinning_respects_phase_windows() {
        let c = churn(1);
        let span = Nanos::from_millis(10);
        let ev = c.schedule(3, span);
        let arrive = ev[0].at;
        let depart = ev
            .iter()
            .rev()
            .find(|e| e.kind == LifecycleEventKind::Depart);
        let full: Vec<Nanos> = (0..10_000u64).map(|i| Nanos(i * 1_000)).collect();
        let kept = thin_schedule(full, &ev, 0);
        assert!(!kept.is_empty());
        assert!(kept.iter().all(|&t| t >= arrive), "nothing before arrival");
        if let Some(d) = depart {
            assert!(kept.iter().all(|&t| t < d.at), "nothing after departure");
        }
    }

    #[test]
    fn divisors_match_levels() {
        for k in [
            LifecycleEventKind::Arrive,
            LifecycleEventKind::Grow,
            LifecycleEventKind::Shrink,
            LifecycleEventKind::Depart,
        ] {
            match k.divisor() {
                Some(d) => assert!((k.level() - 1.0 / d as f64).abs() < 1e-12),
                None => assert_eq!(k.level(), 0.0),
            }
        }
    }
}
