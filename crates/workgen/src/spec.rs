//! Workload specifications: tenants, device mixes, fault plans.

use cxl_pool_core::vdev::DeviceKind;
use simkit::Nanos;

use crate::arrival::Arrival;
use crate::lifecycle::ChurnSpec;
use crate::slo::SloSpec;

/// One operation class a tenant can issue against the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Transmit `bytes` through the tenant's pooled NIC.
    NicSend {
        /// Payload size.
        bytes: u32,
    },
    /// Post an RX buffer, have a frame of `bytes` arrive on the bound
    /// physical NIC, and wait for the RX completion to reach the owner.
    NicRecv {
        /// Frame size.
        bytes: u32,
    },
    /// Read `blocks` 4 KiB blocks from the tenant's pooled SSD.
    SsdRead {
        /// Block count.
        blocks: u32,
    },
    /// Write `blocks` 4 KiB blocks (staged into pool memory first).
    SsdWrite {
        /// Block count.
        blocks: u32,
    },
    /// Offload `bytes` of input to the tenant's pooled accelerator.
    AccelRun {
        /// Input size.
        bytes: u32,
    },
}

impl OpKind {
    /// The device class this operation needs.
    pub fn device_kind(self) -> DeviceKind {
        match self {
            OpKind::NicSend { .. } | OpKind::NicRecv { .. } => DeviceKind::Nic,
            OpKind::SsdRead { .. } | OpKind::SsdWrite { .. } => DeviceKind::Ssd,
            OpKind::AccelRun { .. } => DeviceKind::Accel,
        }
    }

    /// Stable label for reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::NicSend { .. } => "nic_send",
            OpKind::NicRecv { .. } => "nic_recv",
            OpKind::SsdRead { .. } => "ssd_read",
            OpKind::SsdWrite { .. } => "ssd_write",
            OpKind::AccelRun { .. } => "accel_run",
        }
    }
}

/// One tenant: an arrival process issuing a weighted mix of operations
/// from a set of hosts, judged against an SLO.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Tenant name (report/JSON key).
    pub name: String,
    /// How operations arrive.
    pub arrival: Arrival,
    /// Weighted operation mix; weights need not sum to 1.
    pub mix: Vec<(OpKind, f64)>,
    /// Hosts this tenant issues from (uniform pick per op).
    pub hosts: Vec<u16>,
    /// The tenant's latency SLO.
    pub slo: SloSpec,
}

/// What a [`FaultPlan`] takes down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// One MHD dies.
    Mhd(u16),
    /// A whole failure domain dies — every MHD in it at once (chassis
    /// power loss, shared firmware fault).
    Domain(u16),
}

/// A mid-run pool failure: the target dies `at` into the run and
/// software recovery ([`cxl_pool_core::pod::PodSim::recover_pool_failure`]
/// / [`cxl_pool_core::pod::PodSim::recover_domain_failure`]) rebuilds
/// channels on survivors `heal_after` later. Operations in the outage
/// window time out or fail, and their censored latencies degrade the
/// measured tail — exactly the availability cost §5 argues software
/// pooling must absorb.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// What fails.
    pub target: FaultTarget,
    /// Offset from run start at which the failure hits.
    pub at: Nanos,
    /// How long until software recovery rebuilds the channels.
    pub heal_after: Nanos,
}

impl FaultPlan {
    /// A single-MHD outage.
    pub fn mhd(mhd: u16, at: Nanos, heal_after: Nanos) -> FaultPlan {
        FaultPlan {
            target: FaultTarget::Mhd(mhd),
            at,
            heal_after,
        }
    }

    /// A whole-failure-domain outage.
    pub fn domain(domain: u16, at: Nanos, heal_after: Nanos) -> FaultPlan {
        FaultPlan {
            target: FaultTarget::Domain(domain),
            at,
            heal_after,
        }
    }
}

/// A full multi-tenant workload.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// The tenants, driven concurrently.
    pub tenants: Vec<TenantSpec>,
    /// Warmup window: operations run but are not measured.
    pub warmup: Nanos,
    /// Measurement window following warmup.
    pub measure: Nanos,
    /// Per-operation deadline; timed-out ops are censored at this.
    pub op_timeout: Nanos,
    /// Report per-host loads to the orchestrator (and run one balance
    /// pass) every so often; None disables the control-plane feedback.
    pub balance_every: Option<Nanos>,
    /// Optional injected pool failure.
    pub fault: Option<FaultPlan>,
    /// Optional tenant churn (see [`crate::lifecycle`]): lifecycle
    /// tenants that arrive, grow, shrink and depart mid-run. `None`
    /// keeps the run bit-identical to a pre-churn engine.
    pub churn: Option<ChurnSpec>,
}

impl WorkloadSpec {
    /// Total offered rate of all open-loop tenants, ops/s.
    pub fn offered_pps(&self) -> f64 {
        self.tenants
            .iter()
            .filter_map(|t| t.arrival.mean_rate_pps())
            .sum()
    }

    /// The same workload with every tenant's arrival scaled by
    /// `factor` (see [`Arrival::scaled`]).
    pub fn scaled(&self, factor: f64) -> WorkloadSpec {
        let mut s = self.clone();
        for t in &mut s.tenants {
            t.arrival = t.arrival.scaled(factor);
        }
        s
    }

    /// Validates the spec against a pod: every tenant needs at least
    /// one host and one positively-weighted op, and every op's device
    /// kind must exist in `kinds`. Churn tenants are held to the same
    /// rules and must additionally be open-loop (their schedules are
    /// thinned by lifecycle phase, which a completion-driven process
    /// has none of). Returns the offending description.
    pub fn validate(&self, hosts: u16, kinds: &[DeviceKind]) -> Result<(), String> {
        if self.tenants.is_empty() {
            return Err("workload has no tenants".into());
        }
        if self.measure == Nanos::ZERO {
            return Err("measurement window is empty".into());
        }
        let churn_tenants = self
            .churn
            .iter()
            .flat_map(|c| c.tenants.iter().map(|ct| &ct.spec));
        for t in self.tenants.iter().chain(churn_tenants) {
            if t.hosts.is_empty() {
                return Err(format!("tenant {}: no hosts", t.name));
            }
            if let Some(&h) = t.hosts.iter().find(|&&h| h >= hosts) {
                return Err(format!("tenant {}: host {h} outside pod", t.name));
            }
            if t.mix.iter().all(|&(_, w)| w <= 0.0) {
                return Err(format!("tenant {}: empty op mix", t.name));
            }
            for &(op, w) in &t.mix {
                if w > 0.0 && !kinds.contains(&op.device_kind()) {
                    return Err(format!(
                        "tenant {}: {} needs a {:?} but the pod has none",
                        t.name,
                        op.label(),
                        op.device_kind()
                    ));
                }
            }
        }
        if let Some(c) = &self.churn {
            if c.tenants.is_empty() {
                return Err("churn spec has no tenants".into());
            }
            for ct in &c.tenants {
                if !ct.spec.arrival.is_open_loop() {
                    return Err(format!("churn tenant {}: must be open-loop", ct.spec.name));
                }
                if ct.state_len == 0 {
                    return Err(format!("churn tenant {}: zero state_len", ct.spec.name));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(
        name: &str,
        arrival: Arrival,
        mix: Vec<(OpKind, f64)>,
        hosts: Vec<u16>,
    ) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            arrival,
            mix,
            hosts,
            slo: SloSpec::p99(Nanos::from_micros(50)),
        }
    }

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            tenants: vec![
                tenant(
                    "web",
                    Arrival::Poisson { rate_pps: 1_000.0 },
                    vec![(OpKind::NicSend { bytes: 512 }, 1.0)],
                    vec![0, 1],
                ),
                tenant(
                    "batch",
                    Arrival::ClosedLoop {
                        concurrency: 2,
                        think: Nanos(0),
                    },
                    vec![(OpKind::SsdRead { blocks: 1 }, 1.0)],
                    vec![2],
                ),
            ],
            warmup: Nanos::from_micros(100),
            measure: Nanos::from_millis(1),
            op_timeout: Nanos::from_micros(200),
            balance_every: None,
            fault: None,
            churn: None,
        }
    }

    #[test]
    fn offered_counts_open_loop_only() {
        assert!((spec().offered_pps() - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_rescales_tenants() {
        let s = spec().scaled(3.0);
        assert!((s.offered_pps() - 3_000.0).abs() < 1e-9);
    }

    #[test]
    fn validate_accepts_matching_pod() {
        let kinds = [DeviceKind::Nic, DeviceKind::Ssd];
        assert!(spec().validate(4, &kinds).is_ok());
    }

    #[test]
    fn validate_rejects_missing_kind_and_bad_host() {
        let s = spec();
        let err = s.validate(4, &[DeviceKind::Nic]).unwrap_err();
        assert!(err.contains("ssd_read"), "{err}");
        let err = s
            .validate(2, &[DeviceKind::Nic, DeviceKind::Ssd])
            .unwrap_err();
        assert!(err.contains("host 2"), "{err}");
    }

    #[test]
    fn op_kinds_map_to_device_kinds() {
        assert_eq!(OpKind::NicRecv { bytes: 64 }.device_kind(), DeviceKind::Nic);
        assert_eq!(
            OpKind::AccelRun { bytes: 64 }.device_kind(),
            DeviceKind::Accel
        );
        assert_eq!(OpKind::SsdWrite { blocks: 2 }.label(), "ssd_write");
    }
}
