//! Automated capacity search: the maximum offered load meeting every
//! SLO.
//!
//! This is the pod-sizing question (cf. Octopus' pod-scale planning):
//! given a topology and a tenant mix, binary-search the total open-loop
//! offered rate for the largest value at which every tenant's SLO still
//! holds. Each trial rebuilds the pod from scratch so trials are
//! independent and the whole search is a pure function of the seed.

use cxl_pool_core::pod::PodSim;
use simkit::Nanos;

use crate::engine::{Engine, RunReport};
use crate::spec::WorkloadSpec;

/// Search configuration.
#[derive(Clone, Copy, Debug)]
pub struct CapacityConfig {
    /// Lowest total offered rate tried (ops/s).
    pub lo_pps: f64,
    /// Highest total offered rate tried (ops/s).
    pub hi_pps: f64,
    /// Bisection iterations after the endpoint probes; resolution is
    /// `(hi - lo) / 2^iters`.
    pub iters: u32,
}

impl Default for CapacityConfig {
    fn default() -> CapacityConfig {
        CapacityConfig {
            lo_pps: 5_000.0,
            hi_pps: 400_000.0,
            iters: 6,
        }
    }
}

/// One evaluated point of the search.
#[derive(Clone, Debug)]
pub struct TrialPoint {
    /// Total offered rate tried (ops/s).
    pub offered_pps: f64,
    /// Whether every tenant met its SLO at this rate.
    pub pass: bool,
    /// Name of the tenant furthest over (or closest to) its SLO.
    pub worst_tenant: String,
    /// That tenant's observed latency at its SLO quantile.
    pub worst_observed: Nanos,
}

/// The search outcome.
#[derive(Clone, Debug)]
pub struct CapacityResult {
    /// Maximum offered rate meeting every SLO, ops/s (0 when even the
    /// low endpoint fails).
    pub capacity_pps: f64,
    /// Every point evaluated, in evaluation order.
    pub trials: Vec<TrialPoint>,
    /// The full run report at the capacity point (None when capacity
    /// is 0).
    pub report_at_capacity: Option<RunReport>,
}

/// Binary-searches the maximum total offered load under `base`'s tenant
/// mix that still meets every SLO. `build_pod` must return a freshly
/// built pod each call (trials are independent); determinism comes from
/// building it with the same parameters and from `seed`.
pub fn search<F>(
    mut build_pod: F,
    base: &WorkloadSpec,
    cfg: &CapacityConfig,
    seed: u64,
) -> CapacityResult
where
    F: FnMut() -> PodSim,
{
    let base_total = base.offered_pps();
    assert!(
        base_total > 0.0,
        "capacity search needs at least one open-loop tenant"
    );
    assert!(
        cfg.lo_pps > 0.0 && cfg.lo_pps < cfg.hi_pps,
        "need 0 < lo < hi"
    );
    let engine = Engine::new(seed);
    let mut trials = Vec::new();
    let mut trial = |rate: f64, build_pod: &mut F| -> (bool, RunReport) {
        let spec = base.scaled(rate / base_total);
        let mut pod = build_pod();
        let report = engine.run(&mut pod, &spec);
        let worst = report
            .tenants
            .iter()
            .max_by(|a, b| {
                let ra =
                    a.verdict.observed.as_nanos() as f64 / a.verdict.spec.limit.as_nanos() as f64;
                let rb =
                    b.verdict.observed.as_nanos() as f64 / b.verdict.spec.limit.as_nanos() as f64;
                ra.total_cmp(&rb)
            })
            .expect("spec has tenants");
        let pass = report.all_slos_pass();
        trials.push(TrialPoint {
            offered_pps: rate,
            pass,
            worst_tenant: worst.name.clone(),
            worst_observed: worst.verdict.observed,
        });
        (pass, report)
    };

    // Endpoint probes bound the search.
    let (lo_pass, lo_report) = trial(cfg.lo_pps, &mut build_pod);
    if !lo_pass {
        return CapacityResult {
            capacity_pps: 0.0,
            trials,
            report_at_capacity: None,
        };
    }
    let (hi_pass, hi_report) = trial(cfg.hi_pps, &mut build_pod);
    if hi_pass {
        return CapacityResult {
            capacity_pps: cfg.hi_pps,
            trials,
            report_at_capacity: Some(hi_report),
        };
    }

    // Invariant: lo passes, hi fails.
    let (mut lo, mut hi) = (cfg.lo_pps, cfg.hi_pps);
    let mut best = lo_report;
    for _ in 0..cfg.iters {
        let mid = (lo + hi) / 2.0;
        let (pass, report) = trial(mid, &mut build_pod);
        if pass {
            lo = mid;
            best = report;
        } else {
            hi = mid;
        }
    }
    CapacityResult {
        capacity_pps: lo,
        trials,
        report_at_capacity: Some(best),
    }
}
