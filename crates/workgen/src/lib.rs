//! Pool-scale workload engine: the *offered load* side of the paper's
//! quantitative argument.
//!
//! The paper's thesis is that software pooling over a CXL pool absorbs
//! rack-scale I/O load at latencies competitive with a PCIe switch
//! (§3–§4). Every other crate in the workspace models how the pod
//! *serves* an operation; this crate models who *sends* them and
//! answers the sizing question an operator actually asks: **what
//! throughput does this pod sustain at a p99 SLO?**
//!
//! - [`arrival`] — deterministic, seeded arrival processes: open-loop
//!   Poisson, bursty (two-state MMPP), diurnal ramp (non-homogeneous
//!   Poisson via thinning), and closed-loop fixed concurrency.
//! - [`spec`] — multi-tenant workload specs: per-tenant device mixes
//!   (NIC send/recv, SSD read/write, accelerator offload), op sizes,
//!   host affinity, warmup/measurement windows, and optional mid-run
//!   fault plans (a single MHD or a whole multi-MHD failure domain
//!   dies + software recovery), so capacity can be quoted both clean
//!   and under single-domain loss.
//! - [`slo`] — SLO specs (`p99 < 10µs`-style) checked against
//!   [`simkit::stats::Histogram`] distributions, with timed-out
//!   operations censored at their deadline so overload degrades the
//!   tail instead of silently vanishing.
//! - [`lifecycle`] — first-class tenant churn: seeded diurnal
//!   arrive/grow/shrink/depart schedules, with the engine provisioning
//!   and (optionally) live-migrating tenants through
//!   `cxl_pool_core::lifecycle` at each event.
//! - [`engine`] — drives a [`cxl_pool_core::pod::PodSim`] through a
//!   spec in simulated time and reports per-tenant and per-device-kind
//!   latency plus SLO verdicts.
//! - [`capacity`] — binary-searches the maximum offered load that
//!   still meets every tenant's SLO, optionally under an injected
//!   pool failure.
//!
//! Everything is keyed off one `u64` seed: the same seed yields
//! bit-identical arrival schedules and identical simulated-time
//! results, so capacity points are reproducible across runs and CI.

#![warn(missing_docs)]

pub mod arrival;
pub mod capacity;
pub mod engine;
pub mod lifecycle;
pub mod slo;
pub mod spec;

pub use arrival::Arrival;
pub use capacity::{CapacityConfig, CapacityResult, TrialPoint};
pub use engine::{Engine, LifecycleEventReport, RunReport, TenantReport};
pub use lifecycle::{ChurnSpec, ChurnTenant, LifecycleEvent, LifecycleEventKind};
pub use slo::{SloSpec, SloVerdict};
pub use spec::{FaultPlan, FaultTarget, OpKind, TenantSpec, WorkloadSpec};
